"""Tests for the baseline samplers (Passive, Stratified, IS)."""

import numpy as np
import pytest

from repro.measures import f_measure, pool_performance
from repro.oracle import CountingOracle, DeterministicOracle
from repro.samplers import ImportanceSampler, PassiveSampler, StratifiedSampler


def true_f(pool):
    return pool_performance(pool["true_labels"], pool["predictions"])["f_measure"]


class TestPassiveSampler:
    def test_estimate_matches_plain_f_on_sampled_items(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = PassiveSampler(
            pool["predictions"], pool["scores"], oracle, random_state=0
        )
        sampler.sample(500)
        idx = np.asarray(sampler.sampled_indices)
        expected = f_measure(
            pool["true_labels"][idx], pool["predictions"][idx]
        )
        assert sampler.estimate == pytest.approx(expected)

    def test_cold_start_undefined(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = PassiveSampler(
            pool["predictions"], pool["scores"], oracle, random_state=0
        )
        sampler.sample(3)
        # On a 1:125 pool, three uniform draws almost surely miss every
        # positive: the estimate stays NaN.
        assert np.isnan(sampler.history[0]) or sampler.history[0] >= 0

    def test_converges_with_large_budget(self, imbalanced_pool):
        pool = imbalanced_pool
        errs = []
        for seed in range(5):
            oracle = DeterministicOracle(pool["true_labels"])
            sampler = PassiveSampler(
                pool["predictions"], pool["scores"], oracle, random_state=seed
            )
            sampler.sample_until_budget(3000, max_iterations=100_000)
            if not np.isnan(sampler.estimate):
                errs.append(abs(sampler.estimate - true_f(pool)))
        assert errs and np.mean(errs) < 0.25

    def test_precision_recall_exposed(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = PassiveSampler(
            pool["predictions"], pool["scores"], oracle, random_state=1
        )
        sampler.sample(2000)
        assert 0.0 <= sampler.precision_estimate <= 1.0
        assert 0.0 <= sampler.recall_estimate <= 1.0


class TestStratifiedSampler:
    def test_proportional_allocation(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = StratifiedSampler(
            pool["predictions"], pool["scores"], oracle, n_strata=10, random_state=0
        )
        sampler.sample(2000)
        # Sampled stratum frequencies should track the stratum weights.
        counts = np.bincount(
            sampler.strata.allocations[np.asarray(sampler.sampled_indices)],
            minlength=sampler.n_strata,
        )
        observed = counts / counts.sum()
        np.testing.assert_allclose(observed, sampler.strata.weights, atol=0.05)

    def test_estimate_converges(self, imbalanced_pool):
        pool = imbalanced_pool
        errs = []
        for seed in range(5):
            oracle = DeterministicOracle(pool["true_labels"])
            sampler = StratifiedSampler(
                pool["predictions"], pool["scores"], oracle, random_state=seed
            )
            sampler.sample_until_budget(3000, max_iterations=100_000)
            if not np.isnan(sampler.estimate):
                errs.append(abs(sampler.estimate - true_f(pool)))
        assert errs and np.mean(errs) < 0.25

    def test_prebuilt_strata(self, imbalanced_pool):
        from repro.core import csf_stratify

        pool = imbalanced_pool
        strata = csf_stratify(pool["scores"], 15)
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = StratifiedSampler(
            pool["predictions"], pool["scores"], oracle, strata=strata
        )
        assert sampler.strata is strata

    def test_strata_size_mismatch(self, imbalanced_pool):
        from repro.core import csf_stratify

        pool = imbalanced_pool
        strata = csf_stratify(pool["scores"][:100], 5)
        oracle = DeterministicOracle(pool["true_labels"])
        with pytest.raises(ValueError, match="cover"):
            StratifiedSampler(
                pool["predictions"], pool["scores"], oracle, strata=strata
            )


class TestImportanceSampler:
    def test_instrumental_static_and_positive(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = ImportanceSampler(
            pool["predictions"], pool["scores"], oracle, random_state=0
        )
        q = sampler.instrumental
        assert q.sum() == pytest.approx(1.0)
        assert np.all(q > 0)
        before = q.copy()
        sampler.sample(100)
        np.testing.assert_array_equal(before, sampler.instrumental)

    def test_oversamples_predicted_positives(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = ImportanceSampler(
            pool["predictions"], pool["scores"], oracle, random_state=0
        )
        q = sampler.instrumental
        mass_pred = q[pool["predictions"] == 1].sum()
        frac_pred = pool["predictions"].mean()
        # Predicted positives hold far more instrumental mass than
        # their population share.
        assert mass_pred > 5 * frac_pred

    def test_estimate_converges(self, imbalanced_pool):
        pool = imbalanced_pool
        errs = []
        for seed in range(5):
            oracle = DeterministicOracle(pool["true_labels"])
            sampler = ImportanceSampler(
                pool["predictions"], pool["scores"], oracle, random_state=seed
            )
            sampler.sample_until_budget(1000, max_iterations=100_000)
            errs.append(abs(sampler.estimate - true_f(pool)))
        assert np.mean(errs) < 0.1

    def test_beats_passive_under_imbalance(self, imbalanced_pool):
        pool = imbalanced_pool
        is_errs, passive_errs = [], []
        for seed in range(6):
            oracle = DeterministicOracle(pool["true_labels"])
            s = ImportanceSampler(
                pool["predictions"], pool["scores"], oracle, random_state=seed
            )
            s.sample_until_budget(200)
            is_errs.append(abs(s.estimate - true_f(pool)))
            p = PassiveSampler(
                pool["predictions"],
                pool["scores"],
                DeterministicOracle(pool["true_labels"]),
                random_state=seed,
            )
            p.sample_until_budget(200)
            passive_errs.append(
                abs(p.estimate - true_f(pool)) if not np.isnan(p.estimate) else 1.0
            )
        assert np.mean(is_errs) < np.mean(passive_errs)

    def test_probability_scores_accepted(self, imbalanced_pool):
        pool = imbalanced_pool
        probs = 1.0 / (1.0 + np.exp(-pool["scores"]))
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = ImportanceSampler(
            pool["predictions"], probs, oracle, random_state=0
        )
        sampler.sample_until_budget(200)
        assert 0.0 <= sampler.estimate <= 1.0

    def test_epsilon_validation(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = DeterministicOracle(pool["true_labels"])
        with pytest.raises(ValueError, match="epsilon"):
            ImportanceSampler(
                pool["predictions"], pool["scores"], oracle, epsilon=2.0
            )

    def test_label_cache_counts_budget_once(self, imbalanced_pool):
        pool = imbalanced_pool
        oracle = CountingOracle(DeterministicOracle(pool["true_labels"]))
        sampler = ImportanceSampler(
            pool["predictions"], pool["scores"], oracle, random_state=0
        )
        sampler.sample(500)
        assert oracle.n_queries == sampler.labels_consumed
