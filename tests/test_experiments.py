"""Tests for the experiment harness (runner, aggregation, convergence)."""

import numpy as np
import pytest

from repro.core import OASISSampler
from repro.experiments import (
    SamplerSpec,
    aggregate_trajectories,
    format_series,
    format_table,
    run_trials,
    run_convergence_experiment,
)
from repro.oracle import DeterministicOracle, NoisyOracle
from repro.samplers import PassiveSampler


@pytest.fixture(scope="module")
def specs():
    return [
        SamplerSpec(
            "OASIS",
            lambda p, s, o, r: OASISSampler(p, s, o, random_state=r),
        ),
        SamplerSpec(
            "Passive",
            lambda p, s, o, r: PassiveSampler(p, s, o, random_state=r),
        ),
    ]


@pytest.fixture(scope="module")
def trial_results(tiny_abt_buy, specs):
    return run_trials(
        tiny_abt_buy,
        specs,
        budgets=[50, 100, 200],
        n_repeats=8,
        random_state=0,
    )


class TestRunTrials:
    def test_result_shapes(self, trial_results):
        for result in trial_results.values():
            assert result.estimates.shape == (8, 3)
            np.testing.assert_array_equal(result.budgets, [50, 100, 200])

    def test_true_value_recorded(self, trial_results, tiny_abt_buy):
        for result in trial_results.values():
            assert result.true_value == pytest.approx(
                tiny_abt_buy.performance["f_measure"]
            )

    def test_oasis_estimates_defined_everywhere(self, trial_results):
        oasis = trial_results["OASIS"]
        assert not np.isnan(oasis.estimates).any()

    def test_repeats_differ(self, trial_results):
        oasis = trial_results["OASIS"]
        assert len(np.unique(oasis.estimates[:, -1])) > 1

    def test_budget_validation(self, tiny_abt_buy, specs):
        with pytest.raises(ValueError, match="budgets"):
            run_trials(tiny_abt_buy, specs, budgets=[], n_repeats=2)
        with pytest.raises(ValueError, match="budgets"):
            run_trials(tiny_abt_buy, specs, budgets=[0, 10], n_repeats=2)

    def test_reproducible_given_seed(self, tiny_abt_buy, specs):
        a = run_trials(
            tiny_abt_buy, specs[:1], budgets=[50], n_repeats=3, random_state=5
        )
        b = run_trials(
            tiny_abt_buy, specs[:1], budgets=[50], n_repeats=3, random_state=5
        )
        np.testing.assert_allclose(
            a["OASIS"].estimates, b["OASIS"].estimates, equal_nan=True
        )

    def test_custom_oracle_factory(self, tiny_abt_buy, specs):
        results = run_trials(
            tiny_abt_buy,
            specs[:1],
            budgets=[50],
            n_repeats=2,
            oracle_factory=lambda labels, rng: NoisyOracle(
                true_labels=labels, flip_prob=0.05, random_state=rng
            ),
            random_state=0,
        )
        assert "OASIS" in results

    def test_calibrated_scores_flag(self, tiny_abt_buy):
        spec = SamplerSpec(
            "OASIS cal",
            lambda p, s, o, r: OASISSampler(p, s, o, random_state=r),
            use_calibrated_scores=True,
        )
        results = run_trials(
            tiny_abt_buy, [spec], budgets=[50], n_repeats=2, random_state=0
        )
        assert np.isfinite(results["OASIS cal"].estimates).all()

    def test_duplicate_budgets_deduped(self, tiny_abt_buy, specs):
        # Duplicate entries used to emit duplicated grid columns.
        results = run_trials(
            tiny_abt_buy, specs[:1], budgets=[100, 50, 50, 100, 100],
            n_repeats=2, random_state=0,
        )
        np.testing.assert_array_equal(results["OASIS"].budgets, [50, 100])
        assert results["OASIS"].estimates.shape == (2, 2)

    def test_dedup_then_positivity_validated(self, tiny_abt_buy, specs):
        with pytest.raises(ValueError, match="budgets"):
            run_trials(
                tiny_abt_buy, specs, budgets=[-5, -5, 50], n_repeats=2
            )
        with pytest.raises(ValueError, match="budgets"):
            run_trials(tiny_abt_buy, specs, budgets=[0, 0, 0], n_repeats=2)

    def test_deduped_grid_matches_clean_grid(self, tiny_abt_buy, specs):
        noisy_grid = run_trials(
            tiny_abt_buy, specs[:1], budgets=[50, 50, 100], n_repeats=2,
            random_state=3,
        )
        clean_grid = run_trials(
            tiny_abt_buy, specs[:1], budgets=[50, 100], n_repeats=2,
            random_state=3,
        )
        np.testing.assert_array_equal(
            noisy_grid["OASIS"].estimates, clean_grid["OASIS"].estimates
        )


class TestSplitRandomStreams:
    """The oracle and the sampler own independent child streams."""

    def test_oracle_noise_does_not_perturb_sampler(self, tiny_abt_buy, specs):
        # A zero-noise NoisyOracle returns ground truth but *consumes*
        # its own random stream; with split streams the estimates are
        # bit-identical to the deterministic-oracle run.  Under the old
        # shared stream the oracle's draws shifted the sampler's.
        deterministic = run_trials(
            tiny_abt_buy, specs, budgets=[50, 100], n_repeats=3,
            random_state=11,
        )
        zero_noise = run_trials(
            tiny_abt_buy, specs, budgets=[50, 100], n_repeats=3,
            random_state=11,
            oracle_factory=lambda labels, rng: NoisyOracle(
                true_labels=labels, flip_prob=0.0, random_state=rng
            ),
        )
        for name in deterministic:
            np.testing.assert_array_equal(
                deterministic[name].estimates, zero_noise[name].estimates
            )

    def test_noisy_oracle_reproducible_across_batch_sizes(self, tiny_tweets):
        # Non-adaptive sampler + noisy oracle: with each component on
        # its own stream, results at the same seed are bit-identical
        # for batch_size 1 and 16.  With the old interleaved stream the
        # block structure changed who consumed which draw.
        spec = SamplerSpec(
            "Passive",
            lambda p, s, o, r: PassiveSampler(p, s, o, random_state=r),
        )
        def factory(labels, rng):
            return NoisyOracle(
                true_labels=labels, flip_prob=0.1, random_state=rng
            )

        sequential = run_trials(
            tiny_tweets, [spec], budgets=[40, 80], n_repeats=3,
            batch_size=1, oracle_factory=factory, random_state=5,
        )
        batched = run_trials(
            tiny_tweets, [spec], budgets=[40, 80], n_repeats=3,
            batch_size=16, oracle_factory=factory, random_state=5,
        )
        np.testing.assert_array_equal(
            sequential["Passive"].estimates, batched["Passive"].estimates
        )
        assert np.isfinite(sequential["Passive"].estimates).any()


class TestAggregate:
    def test_curve_shapes(self, trial_results):
        stats = aggregate_trajectories(trial_results["OASIS"])
        assert stats.abs_error.shape == (3,)
        assert stats.std_dev.shape == (3,)
        assert stats.defined_fraction.shape == (3,)

    def test_oasis_error_decreases(self, trial_results):
        stats = aggregate_trajectories(trial_results["OASIS"])
        assert stats.abs_error[-1] <= stats.abs_error[0] + 0.05

    def test_well_defined_rule_masks(self, trial_results):
        # Passive on an imbalanced tiny pool is often undefined at 50
        # labels; wherever defined_fraction < 0.95 the curve is NaN.
        stats = aggregate_trajectories(trial_results["Passive"])
        masked = stats.defined_fraction < 0.95
        assert np.all(np.isnan(stats.abs_error[masked]))

    def test_final_abs_error(self, trial_results):
        stats = aggregate_trajectories(trial_results["OASIS"])
        assert stats.final_abs_error() == pytest.approx(stats.abs_error[-1])

    def test_labels_to_reach(self, trial_results):
        stats = aggregate_trajectories(trial_results["OASIS"])
        generous = stats.labels_to_reach(1.0)
        assert generous == 50.0  # first budget already within 1.0
        assert np.isnan(stats.labels_to_reach(0.0)) or stats.labels_to_reach(0.0) >= 50


class TestConvergenceExperiment:
    def test_diagnostics_shapes(self, tiny_abt_buy):
        pool = tiny_abt_buy
        oracle = DeterministicOracle(pool.true_labels)
        sampler = OASISSampler(
            pool.predictions,
            pool.scores_calibrated,
            oracle,
            n_strata=10,
            record_diagnostics=True,
            random_state=0,
        )
        diag = run_convergence_experiment(
            sampler,
            pool.true_labels,
            pool.performance["f_measure"],
            n_iterations=300,
        )
        assert len(diag.f_abs_error) == 300
        assert len(diag.pi_abs_error) == 300
        assert len(diag.kl_from_optimal) == 300
        assert diag.true_v.sum() == pytest.approx(1.0)

    def test_pi_error_decreases(self, tiny_abt_buy):
        pool = tiny_abt_buy
        oracle = DeterministicOracle(pool.true_labels)
        sampler = OASISSampler(
            pool.predictions,
            pool.scores_calibrated,
            oracle,
            n_strata=10,
            record_diagnostics=True,
            random_state=1,
        )
        diag = run_convergence_experiment(
            sampler,
            pool.true_labels,
            pool.performance["f_measure"],
            n_iterations=800,
        )
        assert diag.pi_abs_error[-1] < diag.pi_abs_error[0]

    def test_requires_diagnostics_enabled(self, tiny_abt_buy):
        pool = tiny_abt_buy
        oracle = DeterministicOracle(pool.true_labels)
        sampler = OASISSampler(
            pool.predictions, pool.scores, oracle, random_state=0
        )
        with pytest.raises(ValueError, match="record_diagnostics"):
            run_convergence_experiment(
                sampler, pool.true_labels, 0.5, n_iterations=10
            )

    def test_budget_to_reach_helpers(self, tiny_abt_buy):
        pool = tiny_abt_buy
        oracle = DeterministicOracle(pool.true_labels)
        sampler = OASISSampler(
            pool.predictions,
            pool.scores_calibrated,
            oracle,
            n_strata=10,
            record_diagnostics=True,
            random_state=2,
        )
        diag = run_convergence_experiment(
            sampler, pool.true_labels, pool.performance["f_measure"], n_iterations=200
        )
        assert np.isnan(diag.budget_to_reach_pi(0.0)) or diag.budget_to_reach_pi(0.0) >= 0
        loose = diag.budget_to_reach_kl(1e9)
        assert loose == diag.budgets[0]


class TestReportFormatting:
    def test_format_table_basic(self):
        out = format_table(
            ["name", "value"], [["a", 1.0], ["b", 0.5]], title="T"
        )
        assert "T" in out
        assert "name" in out
        assert "a" in out

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_format_series_subsamples(self):
        out = format_series("curve", list(range(100)), [0.5] * 100, max_points=5)
        assert out.count("0.5") <= 8

    def test_format_series_nan(self):
        out = format_series("c", [1, 2], [float("nan"), 0.25])
        assert "nan" in out

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            format_series("c", [1], [1, 2])
