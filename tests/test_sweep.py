"""Tests for the declarative scenario-sweep layer."""

import json

import numpy as np
import pytest

from repro.experiments import SweepConfig, TrialResult, expand_grid, run_sweep
from repro.experiments.sweep import build_specs

TINY = dict(
    datasets=["abt_buy"],
    budgets=[30, 60],
    samplers=[{"kind": "oasis", "n_strata": 10}, {"kind": "passive"}],
    batch_sizes=[1, 8],
    n_repeats=2,
    seed=17,
    scale="tiny",
)


@pytest.fixture(scope="module")
def tiny_config():
    return SweepConfig(**TINY)


@pytest.fixture(scope="module")
def reference_results(tiny_config):
    return run_sweep(tiny_config)


class TestSweepConfig:
    def test_round_trips_through_dict_and_json(self, tiny_config, tmp_path):
        payload = tiny_config.to_dict()
        assert SweepConfig.from_dict(payload).to_dict() == payload
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(payload))
        assert SweepConfig.from_json(path).to_dict() == payload

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep config keys"):
            SweepConfig.from_dict({"dataset": ["abt_buy"]})

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown datasets"):
            SweepConfig(datasets=["nope"])

    def test_bad_sampler_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SweepConfig(samplers=[{"kind": "magic"}])

    def test_bad_oracle_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SweepConfig(oracles=[{"kind": "psychic"}])

    def test_bad_batch_sizes_rejected(self):
        with pytest.raises(ValueError, match="batch_sizes"):
            SweepConfig(batch_sizes=[0])

    def test_empty_samplers_rejected(self):
        with pytest.raises(ValueError, match="samplers"):
            SweepConfig(samplers=[])


class TestExpandGrid:
    def test_grid_order_and_ids(self):
        config = SweepConfig(
            datasets=["abt_buy", "cora"],
            oracles=[{"kind": "deterministic"},
                     {"kind": "noisy", "flip_prob": 0.05}],
            batch_sizes=[1, 16],
        )
        jobs = expand_grid(config)
        assert len(jobs) == 2 * 2 * 2
        assert [j.index for j in jobs] == list(range(8))
        assert jobs[0].job_id == "abt_buy__deterministic__b1"
        assert jobs[1].job_id == "abt_buy__deterministic__b16"
        assert "noisy" in jobs[2].job_id and "0.05" in jobs[2].job_id
        assert jobs[4].dataset == "cora"

    def test_job_ids_unique(self, tiny_config):
        jobs = expand_grid(tiny_config)
        assert len({j.job_id for j in jobs}) == len(jobs)


class TestBuildSpecs:
    def test_margin_samplers_default_to_pool_threshold(self, tiny_abt_buy):
        config = SweepConfig(samplers=[
            {"kind": "oasis", "n_strata": 5},
            {"kind": "importance"},
            {"kind": "oasis", "n_strata": 5, "use_calibrated_scores": True},
        ])
        specs = build_specs(config, tiny_abt_buy)
        assert specs[0].factory.kwargs["threshold"] == tiny_abt_buy.threshold
        assert specs[1].factory.kwargs["threshold"] == tiny_abt_buy.threshold
        assert "threshold" not in specs[2].factory.kwargs
        assert specs[2].use_calibrated_scores

    def test_names_are_stable_and_distinct(self, tiny_abt_buy):
        config = SweepConfig(samplers=[
            {"kind": "oasis", "n_strata": 5},
            {"kind": "oasis", "n_strata": 10},
            {"kind": "passive"},
        ])
        names = [s.name for s in build_specs(config, tiny_abt_buy)]
        assert len(set(names)) == 3
        assert "passive" in names


class TestRunSweep:
    def test_result_layout(self, tiny_config, reference_results):
        jobs = expand_grid(tiny_config)
        assert set(reference_results) == {j.job_id for j in jobs}
        for job_results in reference_results.values():
            for result in job_results.values():
                assert isinstance(result, TrialResult)
                assert result.estimates.shape == (2, 2)

    def test_workers_bit_identical(self, tiny_config, reference_results):
        parallel = run_sweep(tiny_config, workers=2)
        for job_id, job_results in reference_results.items():
            for name, result in job_results.items():
                np.testing.assert_array_equal(
                    result.estimates, parallel[job_id][name].estimates
                )

    def test_out_dir_persists_and_resumes(
        self, tiny_config, reference_results, tmp_path
    ):
        out = tmp_path / "sweep"
        first = run_sweep(tiny_config, out_dir=out)
        for job_id in first:
            assert (out / job_id / "results.json").is_file()
            assert (out / job_id / "manifest.json").is_file()
        # Interrupt: drop one whole job's shards plus a shard elsewhere.
        job_ids = sorted(first)
        for shard in (out / job_ids[0] / "shards").glob("*.json"):
            shard.unlink()
        some_shard = next((out / job_ids[1] / "shards").glob("*.json"))
        some_shard.unlink()
        resumed = run_sweep(tiny_config, out_dir=out)
        for job_id, job_results in reference_results.items():
            for name, result in job_results.items():
                np.testing.assert_array_equal(
                    result.estimates, resumed[job_id][name].estimates
                )

    def test_different_config_in_same_dir_rejected(
        self, tiny_config, tmp_path
    ):
        out = tmp_path / "sweep"
        run_sweep(tiny_config, out_dir=out)
        other = dict(TINY)
        other["seed"] = 99
        with pytest.raises(ValueError, match="different sweep config"):
            run_sweep(SweepConfig(**other), out_dir=out)

    def test_extending_repeats_in_same_dir_allowed(
        self, tiny_config, reference_results, tmp_path
    ):
        # n_repeats is the one key allowed to change between
        # invocations: task streams don't depend on it, so a finished
        # sweep extends in place.
        out = tmp_path / "sweep"
        shorter = dict(TINY)
        shorter["n_repeats"] = 1
        run_sweep(SweepConfig(**shorter), out_dir=out)
        extended = run_sweep(tiny_config, out_dir=out)
        for job_id, job_results in reference_results.items():
            for name, result in job_results.items():
                np.testing.assert_array_equal(
                    result.estimates, extended[job_id][name].estimates
                )

    def test_duplicate_sampler_cells_rejected(self, tiny_abt_buy):
        config = SweepConfig(samplers=[
            {"kind": "passive"},
            {"kind": "passive"},
        ])
        with pytest.raises(ValueError, match="duplicate names"):
            build_specs(config, tiny_abt_buy)

    def test_progress_callback_sees_every_job(self, tiny_config):
        seen = []
        run_sweep(tiny_config, progress=lambda job, results: seen.append(
            (job.job_id, sorted(results))
        ))
        assert len(seen) == len(expand_grid(tiny_config))
        assert all(names == sorted(names) or names for _, names in seen)
