"""Tests for the semi-supervised mixture estimator (Welinder-style)."""

import numpy as np
import pytest
from scipy import stats

from repro.measures import pool_performance
from repro.oracle import DeterministicOracle
from repro.samplers import BetaMixtureModel, SemiSupervisedEstimator


def beta_mixture_pool(n=4000, pi=0.3, seed=0):
    """A pool whose scores genuinely follow a two-Beta mixture."""
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < pi).astype(np.int8)
    scores = np.where(
        labels == 1,
        rng.beta(6.0, 2.0, size=n),
        rng.beta(2.0, 6.0, size=n),
    )
    predictions = (scores >= 0.5).astype(np.int8)
    return scores, predictions, labels


class TestBetaMixtureModel:
    def test_recovers_mixing_weight(self):
        scores, __, labels = beta_mixture_pool(pi=0.3)
        model = BetaMixtureModel().fit(scores)
        assert model.pi_ == pytest.approx(0.3, abs=0.07)

    def test_labels_clamp_responsibilities(self):
        scores, __, labels = beta_mixture_pool(n=500)
        idx = np.arange(100)
        model = BetaMixtureModel().fit(scores, idx, labels[idx])
        np.testing.assert_allclose(
            model.responsibilities_[idx], labels[idx].astype(float)
        )

    def test_component_ordering(self):
        scores, __, labels = beta_mixture_pool()
        idx = np.arange(200)
        model = BetaMixtureModel().fit(scores, idx, labels[idx])
        # The positive component concentrates on higher scores.
        a1, b1 = model.pos_params_
        a0, b0 = model.neg_params_
        assert a1 / (a1 + b1) > a0 / (a0 + b0)

    def test_tail_probabilities(self):
        scores, __, labels = beta_mixture_pool()
        idx = np.arange(200)
        model = BetaMixtureModel().fit(scores, idx, labels[idx])
        assert model.positive_tail(0.5) > model.negative_tail(0.5)
        # Tails are monotone in the threshold.
        assert model.positive_tail(0.2) >= model.positive_tail(0.8)

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            BetaMixtureModel().fit(np.array([]))

    def test_misaligned_labels_rejected(self):
        with pytest.raises(ValueError, match="align"):
            BetaMixtureModel().fit(np.array([0.5, 0.6]), [0], [1, 0])


class TestSemiSupervisedEstimator:
    def test_accurate_when_model_correct(self):
        scores, predictions, labels = beta_mixture_pool()
        true_f = pool_performance(labels, predictions)["f_measure"]
        estimator = SemiSupervisedEstimator(threshold=0.5, random_state=0)
        estimator.fit(scores, DeterministicOracle(labels), n_labels=300)
        # On well-specified data the estimator is extremely efficient.
        assert estimator.estimate == pytest.approx(true_f, abs=0.05)

    def test_precision_recall_consistent(self):
        scores, predictions, labels = beta_mixture_pool(seed=2)
        estimator = SemiSupervisedEstimator(threshold=0.5, random_state=0)
        estimator.fit(scores, DeterministicOracle(labels), n_labels=300)
        p = estimator.precision_estimate
        r = estimator.recall_estimate
        expected_f = 2 * p * r / (p + r)
        assert estimator.estimate == pytest.approx(expected_f, abs=1e-6)

    def test_label_budget_respected(self):
        from repro.oracle import CountingOracle

        scores, __, labels = beta_mixture_pool(n=500)
        oracle = CountingOracle(DeterministicOracle(labels))
        estimator = SemiSupervisedEstimator(random_state=0)
        estimator.fit(scores, oracle, n_labels=50)
        assert oracle.n_queries == 50
        assert estimator.labels_consumed == 50

    def test_biased_under_imbalance_and_misfit(self, tiny_abt_buy):
        """The paper's criticism, reproduced.

        On a real (synthetic-ER) pool with 1:150 imbalance the score
        distribution is not a clean two-Beta mixture and uniform
        labelling sees almost no positives: the model-based estimate
        stays off target even with a label budget that lets OASIS land
        within a few points.
        """
        from repro.core import OASISSampler

        pool = tiny_abt_buy
        true_f = pool.performance["f_measure"]
        budget = 300

        semi_errors, oasis_errors = [], []
        for seed in range(5):
            estimator = SemiSupervisedEstimator(threshold=0.5, random_state=seed)
            estimator.fit(
                pool.scores_calibrated,
                DeterministicOracle(pool.true_labels),
                n_labels=budget,
            )
            semi_errors.append(abs(estimator.estimate - true_f))

            sampler = OASISSampler(
                pool.predictions, pool.scores_calibrated,
                DeterministicOracle(pool.true_labels), random_state=seed,
            )
            sampler.sample_until_budget(budget)
            oasis_errors.append(abs(sampler.estimate - true_f))

        assert np.mean(oasis_errors) < np.mean(semi_errors)

    def test_invalid_budget(self):
        scores, __, labels = beta_mixture_pool(n=100)
        estimator = SemiSupervisedEstimator()
        with pytest.raises(ValueError, match="n_labels"):
            estimator.fit(scores, DeterministicOracle(labels), n_labels=0)
