"""EvaluationClient: the retry engine, and the client against live tiers.

Two layers of test.  A scripted stub HTTP server exercises the retry
engine's classification table in isolation — 503 means resend, 504
means resend only under idempotency, ``Retry-After`` is honoured,
connections lost after send are fatal exactly when the call carries no
key.  Then the client drives a real sharded service, including across
a worker SIGKILL, where every recovery leg (connection refused, router
503, keyed replay) fires for real.
"""

from __future__ import annotations

import http.server
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.service.client import EvaluationClient, ServiceRequestError
from repro.service.errors import DeadlineExceededError

from test_service_faults import (
    ShardedService,
    make_pool,
    reference_status,
)


# -- scripted stub ---------------------------------------------------------

class StubServer:
    """An HTTP server answering from a script of (status, headers, body).

    When the script runs dry the last entry repeats.  A ``"drop"``
    entry closes the connection without answering — the
    connection-lost-after-send case.  Every request (method, path,
    decoded body, headers) is recorded for assertions.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        stub = self

        class Handler(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self):
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                stub.requests.append((
                    self.command, self.path,
                    json.loads(raw) if raw else None,
                    dict(self.headers),
                ))
                entry = (stub.script.pop(0) if len(stub.script) > 1
                         else stub.script[0])
                if entry == "drop":
                    # shutdown(), not close(): the handler's own
                    # rfile/wfile hold io-refs, so close() would defer
                    # the FIN and the client would block on its timeout
                    # instead of seeing the connection die.
                    self.connection.shutdown(socket.SHUT_RDWR)
                    self.close_connection = True
                    return
                status, headers, body = entry
                payload = json.dumps(body).encode()
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            do_GET = do_POST = do_DELETE = _serve

            def log_message(self, *args):
                pass

        self.server = http.server.ThreadingHTTPServer(
            ("127.0.0.1", 0), Handler)
        self.port = self.server.server_address[1]
        threading.Thread(target=self.server.serve_forever,
                         daemon=True).start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def client(self, **kwargs):
        kwargs.setdefault("backoff", 0.01)
        kwargs.setdefault("backoff_cap", 0.05)
        kwargs.setdefault("seed", 0)
        return EvaluationClient(f"http://127.0.0.1:{self.port}", **kwargs)


OK = (200, {}, {"ok": True})


# -- constructor validation ------------------------------------------------

@pytest.mark.parametrize("url", [
    "https://example.com:1234",       # not http
    "http://127.0.0.1:80/api",        # path prefix
    "http://127.0.0.1:80?x=1",        # query
    "http://",                        # no host
])
def test_rejects_malformed_urls(url):
    with pytest.raises(ValueError):
        EvaluationClient(url)


def test_rejects_non_positive_timeouts():
    with pytest.raises(ValueError):
        EvaluationClient("http://127.0.0.1:1", timeout=0)
    with StubServer([OK]) as stub:
        with pytest.raises(ValueError):
            stub.client().healthz(deadline=-1)


def test_bare_host_port_is_accepted():
    client = EvaluationClient("127.0.0.1:8765")
    assert (client.host, client.port) == ("127.0.0.1", 8765)


# -- the retry classification table ----------------------------------------

def test_503_is_retried_until_success():
    with StubServer([(503, {}, {"error": "busy"}),
                     (503, {}, {"error": "busy"}), OK]) as stub:
        with stub.client() as client:
            assert client.healthz() == {"ok": True}
        assert len(stub.requests) == 3


def test_503_retries_exhaust_into_the_last_error():
    with StubServer([(503, {}, {"error": "always busy"})]) as stub:
        with stub.client(max_retries=2) as client:
            with pytest.raises(ServiceRequestError) as excinfo:
                client.healthz()
    assert excinfo.value.status == 503
    assert len(stub.requests) == 3  # initial + 2 retries


def test_retry_after_header_is_honoured_but_capped():
    with StubServer([(503, {"Retry-After": "0.2"}, {"error": "busy"}),
                     OK]) as stub:
        with stub.client(backoff_cap=0.05) as client:
            started = time.monotonic()
            client.healthz()
            elapsed = time.monotonic() - started
    # Slept, but by the client's own cap, not the server's 0.2s ask.
    assert 0.01 < elapsed < 0.19


def test_504_retries_only_under_idempotency():
    with StubServer([(504, {}, {"error": "deadline"}), OK]) as stub:
        with stub.client() as client:
            with pytest.raises(ServiceRequestError) as excinfo:
                client._request("POST", "/x", {}, idempotent=False)
            assert excinfo.value.status == 504
            assert client._request("POST", "/x", {}, idempotent=True) \
                == {"ok": True}


def test_connection_lost_after_send_is_fatal_without_a_key():
    with StubServer(["drop", OK]) as stub:
        with stub.client() as client:
            with pytest.raises(DeadlineExceededError, match="outcome unknown"):
                client._request("POST", "/x", {}, idempotent=False)
            # The same failure under a key is just another retry.
            assert client._request("POST", "/x", {}, idempotent=True) \
                == {"ok": True}


def test_non_retryable_statuses_raise_with_payload():
    with StubServer([(404, {}, {"error": "no such session"})]) as stub:
        with stub.client() as client:
            with pytest.raises(ServiceRequestError) as excinfo:
                client.status("nope")
    assert excinfo.value.status == 404
    assert excinfo.value.payload["error"] == "no such session"
    assert len(stub.requests) == 1  # 4xx is never retried


def test_mutating_calls_carry_auto_keys_and_deadline_header():
    with StubServer([OK]) as stub:
        with stub.client(timeout=5.0) as client:
            client.propose("s", 4)
            client.ingest("s", 0, [1, 0])
            client.create_session([1], [0.5], sampler="oasis", seed=0)
    propose, ingest, create = stub.requests
    assert propose[2]["key"].startswith("propose-")
    assert ingest[2]["key"].startswith("ingest-")
    assert ingest[2]["labels"] == [1, 0]
    # The create body got a client-side session id — retryable creates.
    assert create[2]["session_id"]
    for request in stub.requests:
        assert 0 < float(request[3]["X-Request-Timeout"]) <= 5.0


# -- against the real service ----------------------------------------------

ROUNDS = 4
BATCH = 6
SEED = 23


def test_full_protocol_against_live_sharded_service(tmp_path):
    predictions, scores, true_labels = make_pool(seed=SEED)
    with ShardedService(tmp_path / "root", shards=2) as service:
        with EvaluationClient(f"http://127.0.0.1:{service.port}",
                              seed=4) as client:
            assert client.healthz()["status"] == "ok"
            created = client.create_session(
                predictions, scores, sampler="oasis", seed=SEED)
            sid = created["session_id"]
            assert any(s["session_id"] == sid
                       for s in client.list_sessions())
            for _ in range(ROUNDS):
                proposal = client.propose(sid, BATCH)
                labels = {int(i): int(true_labels[i])
                          for i in proposal["pending"]}
                client.ingest(sid, proposal["ticket"], labels)
            estimate = client.estimate(sid)
            client.checkpoint(sid)
            final = client.status(sid)
            assert client.close_session(sid)["closed"]
    reference = reference_status(
        predictions, scores, true_labels,
        seed=SEED, rounds=ROUNDS, batch_size=BATCH)
    assert final["estimate"] == reference["estimate"]
    assert estimate["estimate"] == reference["estimate"]
    assert final["labels_consumed"] == reference["labels_consumed"]


def test_same_key_replays_the_same_proposal(tmp_path):
    predictions, scores, _ = make_pool(seed=2)
    with ShardedService(tmp_path / "root") as service:
        with EvaluationClient(f"http://127.0.0.1:{service.port}") as client:
            sid = client.create_session(
                predictions, scores, sampler="oasis", seed=1)["session_id"]
            first = client.propose(sid, 5, idempotency_key="retry-me")
            again = client.propose(sid, 5, idempotency_key="retry-me")
            assert again == first  # replayed, not a 409 conflict


def test_client_rides_through_a_worker_sigkill(tmp_path):
    """Kill the worker under the client mid-trajectory: the next calls
    see the router's 503s and refused connections, reconnect, and the
    restored session finishes bit-identically — no caller-side
    recovery code at all.
    """
    predictions, scores, true_labels = make_pool(seed=31)
    with ShardedService(tmp_path / "root", shards=1) as service:
        with EvaluationClient(f"http://127.0.0.1:{service.port}",
                              backoff=0.02, seed=5) as client:
            sid = client.create_session(
                predictions, scores, sampler="oasis",
                seed=SEED)["session_id"]
            for _ in range(2):
                proposal = client.propose(sid, BATCH)
                client.ingest(sid, proposal["ticket"],
                              [int(true_labels[i])
                               for i in proposal["pending"]])
            os.kill(service.supervisor.worker_pids()[0], signal.SIGKILL)
            for _ in range(2, ROUNDS):
                proposal = client.propose(sid, BATCH)
                client.ingest(sid, proposal["ticket"],
                              [int(true_labels[i])
                               for i in proposal["pending"]])
            final = client.status(sid)
            assert service.supervisor.restarts == [1]
    reference = reference_status(
        predictions, scores, true_labels,
        seed=SEED, rounds=ROUNDS, batch_size=BATCH)
    assert final["estimate"] == reference["estimate"]
    assert final["draws"] == reference["draws"]
