"""Extra tests for report rendering edge cases."""

import math

from repro.experiments import format_series, format_table


class TestFormatTableNumbers:
    def test_large_numbers_scientific(self):
        out = format_table(["x"], [[123456.789]])
        assert "e+" in out or "123456" in out

    def test_tiny_numbers_scientific(self):
        out = format_table(["x"], [[0.00001234]])
        assert "e-" in out

    def test_nan_rendered(self):
        out = format_table(["x"], [[float("nan")]])
        assert "nan" in out

    def test_mixed_types_row(self):
        out = format_table(
            ["name", "count", "score"], [["abc", 10, 0.5]]
        )
        assert "abc" in out
        assert "10" in out

    def test_zero(self):
        out = format_table(["x"], [[0.0]])
        assert "0" in out

    def test_trailing_zeros_stripped(self):
        out = format_table(["x"], [[0.5000]])
        assert "0.5000" not in out
        assert "0.5" in out


class TestFormatSeriesEdges:
    def test_single_point(self):
        out = format_series("s", [1], [0.25])
        assert "0.25" in out

    def test_integers_not_mangled(self):
        out = format_series("s", [100, 200], [1, 2])
        assert "100" in out
        assert "200" in out

    def test_last_point_always_kept(self):
        xs = list(range(50))
        ys = [0.0] * 49 + [9.875]
        out = format_series("s", xs, ys, max_points=5)
        assert "9.875" in out

    def test_custom_labels(self):
        out = format_series("s", [1], [2.0], x_label="t", y_label="err")
        assert "t " in out or out.splitlines()[1].startswith("t")
        assert "err" in out

    def test_infinity_rendered(self):
        out = format_series("s", [1], [math.inf])
        assert "inf" in out
