"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == "tiny"

    def test_compare_options(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "cora", "--budget", "500",
             "--repeats", "3", "--calibrated", "--include-oss"]
        )
        assert args.dataset == "cora"
        assert args.budget == 500
        assert args.calibrated is True
        assert args.include_oss is True

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "nope"])

    def test_compare_workers_option(self):
        args = build_parser().parse_args(["compare", "--workers", "4"])
        assert args.workers == 4

    def test_convergence_batch_size_option(self):
        args = build_parser().parse_args(["convergence", "--batch-size", "8"])
        assert args.batch_size == 8

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.datasets == ["abt_buy"]
        assert args.batch_sizes == [1]
        assert args.workers == 1
        assert args.resume is True
        assert args.out is None

    def test_sweep_grid_options(self):
        args = build_parser().parse_args([
            "sweep", "--datasets", "abt_buy", "cora",
            "--budgets", "50", "100", "--batch-sizes", "1", "16",
            "--flip-prob", "0.05", "--workers", "2",
            "--out", "runs/x", "--no-resume",
        ])
        assert args.datasets == ["abt_buy", "cora"]
        assert args.budgets == [50, 100]
        assert args.batch_sizes == [1, 16]
        assert args.flip_prob == 0.05
        assert args.resume is False

    def test_sweep_resume_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--resume", "--no-resume"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "abt_buy" in out
        assert "imb_ratio" in out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "150", "--repeats", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "OASIS 30 abs_err" in out
        assert "Passive abs_err" in out

    def test_compare_with_oss(self, capsys):
        main([
            "compare", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "100", "--repeats", "2", "--include-oss",
        ])
        assert "OSS abs_err" in capsys.readouterr().out

    def test_convergence_command(self, capsys):
        code = main([
            "convergence", "--dataset", "abt_buy", "--scale", "tiny",
            "--iterations", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "KL(v*||v_hat)" in out

    def test_calibration_command(self, capsys):
        code = main([
            "calibration", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "120", "--repeats", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "IS uncal abs_err" in out
        assert "OASIS cal abs_err" in out

    def test_compare_command_with_workers(self, capsys):
        code = main([
            "compare", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "100", "--repeats", "2", "--workers", "2",
        ])
        assert code == 0
        assert "OASIS 30 abs_err" in capsys.readouterr().out

    def test_sweep_command_inline_grid(self, capsys, tmp_path):
        out_dir = tmp_path / "run"
        code = main([
            "sweep", "--datasets", "abt_buy", "--scale", "tiny",
            "--budgets", "30", "60", "--batch-sizes", "1", "8",
            "--repeats", "2", "--n-strata", "10",
            "--out", str(out_dir),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "abt_buy__deterministic__b1" in printed
        assert "abt_buy__deterministic__b8" in printed
        assert (out_dir / "sweep.json").is_file()
        assert (out_dir / "abt_buy__deterministic__b1" / "results.json").is_file()

    def test_sweep_command_from_config_file(self, capsys, tmp_path):
        import json

        config = {
            "datasets": ["abt_buy"],
            "budgets": [30],
            "samplers": [{"kind": "passive"}],
            "batch_sizes": [1],
            "n_repeats": 2,
            "seed": 3,
            "scale": "tiny",
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(config))
        code = main(["sweep", "--config", str(path)])
        assert code == 0
        assert "passive abs_err" in capsys.readouterr().out
