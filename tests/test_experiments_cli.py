"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == "tiny"

    def test_compare_options(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "cora", "--budget", "500",
             "--repeats", "3", "--calibrated", "--include-oss"]
        )
        assert args.dataset == "cora"
        assert args.budget == 500
        assert args.calibrated is True
        assert args.include_oss is True

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "nope"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "abt_buy" in out
        assert "imb_ratio" in out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "150", "--repeats", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "OASIS 30 abs_err" in out
        assert "Passive abs_err" in out

    def test_compare_with_oss(self, capsys):
        main([
            "compare", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "100", "--repeats", "2", "--include-oss",
        ])
        assert "OSS abs_err" in capsys.readouterr().out

    def test_convergence_command(self, capsys):
        code = main([
            "convergence", "--dataset", "abt_buy", "--scale", "tiny",
            "--iterations", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "KL(v*||v_hat)" in out

    def test_calibration_command(self, capsys):
        code = main([
            "calibration", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "120", "--repeats", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "IS uncal abs_err" in out
        assert "OASIS cal abs_err" in out
