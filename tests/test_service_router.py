"""Consistent hashing and topology pinning for the sharded tier.

The ring decides which shard directory owns which session journal, so
its two load-bearing properties are determinism (every process, every
restart, same mapping) and stability (resizing moves few keys).  The
topology file turns the shard count into part of the root's identity.
"""

from __future__ import annotations

import json

import pytest

from repro.service.router import HashRing, init_topology, load_topology


class TestHashRing:
    def test_deterministic_across_instances(self):
        ids = [f"session-{i}" for i in range(200)]
        first = [HashRing(4).shard_for(sid) for sid in ids]
        second = [HashRing(4).shard_for(sid) for sid in ids]
        assert first == second

    def test_covers_all_shards_evenly_enough(self):
        ring = HashRing(4)
        counts = [0] * 4
        for i in range(2000):
            counts[ring.shard_for(f"id-{i}")] += 1
        # Not a statistical test — just "no shard is starved or hogging".
        assert min(counts) > 2000 / 4 / 3
        assert max(counts) < 2000 / 4 * 2

    def test_resizing_moves_a_minority_of_keys(self):
        ids = [f"session-{i}" for i in range(1000)]
        four, five = HashRing(4), HashRing(5)
        moved = sum(1 for sid in ids
                    if four.shard_for(sid) != five.shard_for(sid))
        # Consistent hashing: adding one shard should move ≈ 1/5 of the
        # keys, nothing like the 4/5 a modulo scheme reshuffles.
        assert moved < len(ids) * 0.45

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"x{i}") for i in range(50)} == {0}

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            HashRing(0)


class TestTopology:
    def test_fresh_root_records_topology(self, tmp_path):
        written = init_topology(tmp_path / "root", 4, "json")
        assert written["shards"] == 4
        stored = load_topology(tmp_path / "root")
        assert stored == written
        # Human-inspectable on disk.
        on_disk = json.loads((tmp_path / "root" / "topology.json").read_text())
        assert on_disk["shards"] == 4 and on_disk["codec"] == "json"

    def test_matching_restart_is_idempotent(self, tmp_path):
        init_topology(tmp_path / "root", 2, "binary")
        again = init_topology(tmp_path / "root", 2, "binary")
        assert again["shards"] == 2 and again["codec"] == "binary"

    def test_shard_count_mismatch_rejected(self, tmp_path):
        init_topology(tmp_path / "root", 4, "json")
        with pytest.raises(ValueError, match="laid out for 4 shard"):
            init_topology(tmp_path / "root", 8, "json")

    def test_codec_mismatch_rejected(self, tmp_path):
        init_topology(tmp_path / "root", 4, "json")
        with pytest.raises(ValueError, match="codec"):
            init_topology(tmp_path / "root", 4, "binary")

    def test_missing_root_reports_none(self, tmp_path):
        assert load_topology(tmp_path / "nowhere") is None
