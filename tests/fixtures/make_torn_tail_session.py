"""Regenerate the committed torn-tail recovery fixture.

Produces ``tests/fixtures/torn_tail_session/``: two session journals —
one per WAL codec — each ending in a **torn final frame**: the last
event shard holds only a prefix of the bytes its frame header
declares, exactly the footprint of a crash (or power loss on a
non-atomic store) mid-append.  A ``fixture.json`` sidecar records the
pool, the drive schedule and the state restore must land on *after*
discarding the torn tail.

The committed directory is the compatibility contract for torn-tail
recovery itself: ``tests/test_service_torn_fixture.py`` restores both
sessions with current code and must (a) classify the damage as a
recoverable tail, not corruption, (b) land bit-identically on the
recorded pre-tear trajectory, and (c) keep journalling cleanly from
the recovered sequence number.  Regenerate only when the frame format
version changes — that is a migration event, not a refresh.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_torn_tail_session.py
"""

from __future__ import annotations

import json
import shutil
import sys
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

from repro.service.codec import encode_state  # noqa: E402
from repro.service.session import EvaluationSession  # noqa: E402
from repro.service.wal import SessionWAL  # noqa: E402

SEED = 31
BATCH_SIZE = 7
ROUNDS = 3  # full rounds; a final ingest is then appended and torn


def make_pool(seed=29, n=80):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.3).astype(np.int8)
    scores = rng.normal(size=n) + 1.6 * labels
    predictions = (scores > 0.55).astype(np.int8)
    return predictions, scores, labels


def main() -> None:
    root = HERE / "torn_tail_session"
    if root.exists():
        shutil.rmtree(root)
    root.mkdir(parents=True)

    predictions, scores, labels = make_pool()
    sidecar = {
        "seed": SEED,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "true_labels": [int(v) for v in labels],
        "predictions": encode_state(np.asarray(predictions)),
        "scores": encode_state(np.asarray(scores, dtype=float)),
        "sessions": {},
    }

    for codec in ("json", "binary"):
        session_id = f"torn-{codec}"
        session = EvaluationSession.create(
            predictions, scores, sampler="oasis", measure="recall",
            seed=SEED, directory=root / session_id, session_id=session_id,
            wal_factory=lambda d: SessionWAL(d, codec=codec),
        )
        for _ in range(ROUNDS):
            proposal = session.propose(BATCH_SIZE)
            session.ingest(
                proposal["ticket"],
                [int(labels[i]) for i in proposal["pending"]],
            )
        expected = session.status()
        estimate_at_restore = float(session.estimate)

        # One more round, whose ingest we tear: the expected state at
        # restore is *after* its propose (outstanding again) but before
        # its ingest — the torn event is the ingest's shard.  The
        # propose changes no labels, so the estimate to restore to is
        # the one captured above.
        proposal = session.propose(BATCH_SIZE)
        session.ingest(
            proposal["ticket"],
            [int(labels[i]) for i in proposal["pending"]],
        )
        events = root / session_id / "events"
        tail = sorted(events.iterdir())[-1]
        data = tail.read_bytes()
        tail.write_bytes(data[: max(13, 2 * len(data) // 3)])

        sidecar["sessions"][codec] = {
            "session_id": session_id,
            "torn_shard": tail.name,
            "estimate_at_restore": estimate_at_restore,
            "draws_at_restore": expected["draws"],
            "labels_consumed_at_restore": expected["labels_consumed"],
            "outstanding_ticket": proposal["ticket"],
            "outstanding_pending": [int(i) for i in proposal["pending"]],
        }

    (root / "fixture.json").write_text(
        json.dumps(sidecar, indent=1, sort_keys=True)
    )
    print(f"wrote {root}")


if __name__ == "__main__":
    main()
