"""Regenerate the committed binary-WAL session fixture.

Produces ``tests/fixtures/binary_wal_session/``: a session journal
written entirely through the **binary codec** and the group-commit
write path — batch shards (``b*.bin``), a binary checkpoint snapshot
and event shards — plus a ``fixture.json`` sidecar with the pool, the
drive schedule and the expected state at restore time.

The committed directory is the cross-version compatibility contract
for the binary format: ``tests/test_service_binary_fixture.py`` (and
the CI service-smoke job) restore it with current code and must land
bit-identically on the recorded trajectory.  Regenerate only when the
binary format version changes — that is a migration event, not a
refresh.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_binary_wal_session.py
"""

from __future__ import annotations

import json
import shutil
import sys
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

from repro.service.codec import encode_state  # noqa: E402
from repro.service.session import EvaluationSession  # noqa: E402
from repro.service.wal import GroupCommitWAL  # noqa: E402

SESSION_ID = "binsession"
SEED = 23
N_STRATA = 5
BATCH_SIZE = 12
BATCHES_DRIVEN = 4  # checkpoint after the second
EXTRA_BATCHES = 2  # driven by the test after restore


def make_pool(seed=17, n=90):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.25).astype(np.int8)
    scores = rng.normal(size=n) + 1.8 * labels
    predictions = (scores > 0.6).astype(np.int8)
    return predictions, scores, labels


def main() -> None:
    root = HERE / "binary_wal_session"
    if root.exists():
        shutil.rmtree(root)
    root.mkdir(parents=True)

    predictions, scores, labels = make_pool()
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis",
        sampler_kwargs={"n_strata": N_STRATA}, measure="recall", seed=SEED,
        directory=root / SESSION_ID, session_id=SESSION_ID,
        wal_factory=lambda d: GroupCommitWAL(d, codec="binary",
                                             max_batch=1000),
    )

    def drive(batches):
        for __ in range(batches):
            proposal = session.propose(BATCH_SIZE)
            session.ingest(
                proposal["ticket"],
                [int(labels[i]) for i in proposal["pending"]],
            )
        session.wal.flush()  # group commit: durable only after the flush

    drive(2)
    session.checkpoint()
    drive(BATCHES_DRIVEN - 2)
    estimate_at_restore = float(session.estimate)

    shards = sorted(p.name for p in (root / SESSION_ID / "events").iterdir())
    if not any(name.endswith(".bin") for name in shards):
        raise AssertionError(f"expected binary shards, found {shards}")

    sidecar = {
        "session_id": SESSION_ID,
        "measure": "recall",
        "seed": SEED,
        "n_strata": N_STRATA,
        "batch_size": BATCH_SIZE,
        "batches_driven": BATCHES_DRIVEN,
        "extra_batches": EXTRA_BATCHES,
        "estimate_at_restore": estimate_at_restore,
        "labels_consumed_at_restore": session.sampler.labels_consumed,
        "event_shards": shards,
        "true_labels": [int(v) for v in labels],
        "predictions": encode_state(np.asarray(predictions)),
        "scores": encode_state(np.asarray(scores, dtype=float)),
    }
    (root / "fixture.json").write_text(
        json.dumps(sidecar, indent=1, sort_keys=True)
    )
    print(f"wrote {root} (estimate at restore: {estimate_at_restore:.6f})")


if __name__ == "__main__":
    main()
