"""Regenerate the committed v1 (pre-measure) session fixture.

Produces ``tests/fixtures/v1_session/``: a PR-4-era journal directory —
an alpha-only manifest (no ``measure`` key) plus propose/ingest events
and a *version-1* checkpoint snapshot — together with a ``fixture.json``
sidecar carrying the pool's true labels and the expected state at
restore time.  The migration tests and the CI service-smoke job restore
this directory to prove old-schema sessions keep working.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_v1_session.py
"""

from __future__ import annotations

import json
import shutil
import sys
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

from test_measure_equivalence import downgrade_sampler_state  # noqa: E402

from repro.service.codec import decode_state, encode_state  # noqa: E402
from repro.service.session import EvaluationSession  # noqa: E402
from repro.utils import atomic_write_text  # noqa: E402

SESSION_ID = "v1session"
SEED = 11
N_STRATA = 6
BATCH_SIZE = 16
BATCHES_DRIVEN = 3  # two before the checkpoint, one after
EXTRA_BATCHES = 2  # driven by the test after restore


def make_pool(seed=3, n=80):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.15).astype(np.int8)
    scores = rng.normal(size=n) + 2.0 * labels
    predictions = (scores > 0.4).astype(np.int8)
    return predictions, scores, labels


def main() -> None:
    root = HERE / "v1_session"
    if root.exists():
        shutil.rmtree(root)
    root.mkdir(parents=True)

    predictions, scores, labels = make_pool()
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis",
        sampler_kwargs={"n_strata": N_STRATA}, alpha=0.5, seed=SEED,
        directory=root / SESSION_ID, session_id=SESSION_ID,
    )

    def drive(batches):
        for __ in range(batches):
            proposal = session.propose(BATCH_SIZE)
            session.ingest(
                proposal["ticket"],
                [int(labels[i]) for i in proposal["pending"]],
            )

    drive(2)
    session.checkpoint()
    drive(BATCHES_DRIVEN - 2)
    estimate_at_restore = float(session.estimate)

    # Downgrade the checkpoint event to the historical v1 snapshot
    # layout (alpha instead of measure, no total-weight moment).
    for path in sorted((root / SESSION_ID / "events").iterdir()):
        if "-checkpoint" not in path.name:
            continue
        event = json.loads(path.read_text())
        state = decode_state(event["state"])
        event["state"] = encode_state(downgrade_sampler_state(state))
        atomic_write_text(path, json.dumps(event))

    sidecar = {
        "session_id": SESSION_ID,
        "alpha": 0.5,
        "seed": SEED,
        "n_strata": N_STRATA,
        "batch_size": BATCH_SIZE,
        "batches_driven": BATCHES_DRIVEN,
        "extra_batches": EXTRA_BATCHES,
        "estimate_at_restore": estimate_at_restore,
        "true_labels": [int(v) for v in labels],
        "predictions": encode_state(np.asarray(predictions)),
        "scores": encode_state(np.asarray(scores, dtype=float)),
    }
    (HERE / "v1_session" / "fixture.json").write_text(
        json.dumps(sidecar, indent=1, sort_keys=True)
    )
    print(f"wrote {root} (estimate at restore: {estimate_at_restore:.6f})")


if __name__ == "__main__":
    main()
