"""Regenerate the committed convergence-report fixture.

Produces ``tests/fixtures/report_sweep/``: a seeded mini run of
:func:`repro.experiments.runner.run_trials` (OASIS vs Passive on a
tiny synthetic pool) checkpointed through
:class:`~repro.experiments.persistence.TrialStore`, with the
aggregated ``results.json`` written alongside — exactly the directory
shape ``python -m repro.experiments report --store`` consumes.  The
golden report test renders this fixture and asserts the output is
byte-stable and that the data island round-trips the stored estimates
bitwise.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_report_fixture.py
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np

from repro.core import OASISSampler
from repro.datasets.benchmark import BenchmarkPool
from repro.experiments import SamplerSpec, run_trials
from repro.experiments.persistence import save_results
from repro.measures.fmeasure import pool_performance
from repro.samplers import PassiveSampler

HERE = Path(__file__).resolve().parent

POOL_SEED = 17
POOL_SIZE = 160
RUN_SEED = 7
BUDGETS = (20, 40, 60, 80)
N_REPEATS = 4
BATCH_SIZE = 4


def make_pool() -> BenchmarkPool:
    rng = np.random.default_rng(POOL_SEED)
    labels = (rng.random(POOL_SIZE) < 0.2).astype(np.int8)
    scores = rng.normal(size=POOL_SIZE) + 2.0 * labels
    predictions = (scores > 0.5).astype(np.int8)
    return BenchmarkPool(
        name="report-fixture",
        scores=scores,
        scores_calibrated=1.0 / (1.0 + np.exp(-scores)),
        predictions=predictions,
        true_labels=labels,
        performance=pool_performance(labels, predictions),
    )


def main() -> None:
    root = HERE / "report_sweep"
    if root.exists():
        shutil.rmtree(root)
    pool = make_pool()
    specs = [
        SamplerSpec(
            "OASIS",
            lambda p, s, o, r, **kw: OASISSampler(p, s, o, random_state=r),
        ),
        SamplerSpec(
            "Passive",
            lambda p, s, o, r, **kw: PassiveSampler(p, s, o, random_state=r),
        ),
    ]
    results = run_trials(
        pool,
        specs,
        budgets=list(BUDGETS),
        n_repeats=N_REPEATS,
        batch_size=BATCH_SIZE,
        random_state=RUN_SEED,
        checkpoint_dir=root,
    )
    save_results(results, root / "results.json")
    shards = sorted(p.name for p in (root / "shards").glob("*.json"))
    print(f"wrote {root} ({len(shards)} shards + results.json)")


if __name__ == "__main__":
    main()
