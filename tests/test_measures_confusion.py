"""Tests for confusion-matrix counting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.measures import ConfusionCounts, confusion_counts


class TestConfusionCounts:
    def test_basic_counting(self):
        counts = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert counts.tp == 1
        assert counts.fn == 1
        assert counts.fp == 1
        assert counts.tn == 1

    def test_weighted_counting(self):
        counts = confusion_counts([1, 0], [1, 1], weights=[3.0, 0.5])
        assert counts.tp == pytest.approx(3.0)
        assert counts.fp == pytest.approx(0.5)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            confusion_counts([1, 0], [1])

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            confusion_counts([1, 0], [1, 0], weights=[1.0])

    def test_derived_totals(self):
        counts = ConfusionCounts(tp=2, fp=3, fn=4, tn=5)
        assert counts.total == 14
        assert counts.predicted_positives == 5
        assert counts.actual_positives == 6

    def test_addition(self):
        a = ConfusionCounts(1, 2, 3, 4)
        b = ConfusionCounts(10, 20, 30, 40)
        c = a + b
        assert (c.tp, c.fp, c.fn, c.tn) == (11, 22, 33, 44)

    def test_frozen(self):
        counts = ConfusionCounts(1, 2, 3, 4)
        with pytest.raises(AttributeError):
            counts.tp = 99

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=40),
        st.lists(st.integers(0, 1), min_size=1, max_size=40),
    )
    def test_property_partition(self, true, pred):
        n = min(len(true), len(pred))
        counts = confusion_counts(true[:n], pred[:n])
        # The four cells always partition the sample.
        assert counts.total == pytest.approx(n)
