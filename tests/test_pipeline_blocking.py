"""Tests for blocking schemes."""

import numpy as np
import pytest

from repro.pipeline import (
    Record,
    RecordStore,
    sorted_neighbourhood_pairs,
    sorted_neighbourhood_pairs_reference,
    token_blocking_pairs,
    token_blocking_pairs_reference,
)


@pytest.fixture
def stores():
    schema = ("name",)
    names_a = ["acme rocket", "zenith lamp", "polar fridge"]
    names_b = ["acme rocket pro", "stellar lamp", "unrelated thing"]
    store_a = RecordStore(schema)
    store_b = RecordStore(schema)
    for i, name in enumerate(names_a):
        store_a.add(Record(i, i, {"name": name}))
    for i, name in enumerate(names_b):
        store_b.add(Record(i, i, {"name": name}))
    return store_a, store_b


class TestTokenBlocking:
    def test_shared_tokens_paired(self, stores):
        pairs = token_blocking_pairs(*stores, "name")
        pair_set = {tuple(p) for p in pairs}
        assert (0, 0) in pair_set  # share "acme" and "rocket"
        assert (1, 1) in pair_set  # share "lamp"

    def test_unrelated_not_paired(self, stores):
        pairs = token_blocking_pairs(*stores, "name")
        pair_set = {tuple(p) for p in pairs}
        assert (2, 2) not in pair_set  # fridge vs unrelated thing

    def test_reduces_pair_space(self, stores):
        pairs = token_blocking_pairs(*stores, "name")
        assert len(pairs) < 9  # full cross product is 3 x 3

    def test_max_block_size_drops_stopword_blocks(self):
        schema = ("name",)
        store_a = RecordStore(schema)
        store_b = RecordStore(schema)
        for i in range(5):
            store_a.add(Record(i, i, {"name": f"the item{i}"}))
            store_b.add(Record(i, i, {"name": f"the other{i}"}))
        unlimited = token_blocking_pairs(store_a, store_b, "name")
        limited = token_blocking_pairs(store_a, store_b, "name", max_block_size=4)
        assert len(unlimited) == 25  # "the" pairs everything
        assert len(limited) == 0

    def test_max_block_size_bounds_per_source_membership(self):
        """A token kept in few records of one source must survive even
        when the other source's block makes the *product* large."""
        schema = ("name",)
        store_a = RecordStore(schema)
        store_b = RecordStore(schema)
        store_a.add(Record(0, 0, {"name": "acme"}))  # block_a size 1
        for j in range(6):
            store_b.add(Record(j, j, {"name": "acme"}))  # block_b size 6
        # Per-source bound: block_a (1) and block_b (6) vs the limit.
        assert len(token_blocking_pairs(store_a, store_b, "name", max_block_size=6)) == 6
        assert len(token_blocking_pairs(store_a, store_b, "name", max_block_size=5)) == 0

    def test_max_pairs_per_token_bounds_block_product(self):
        schema = ("name",)
        store_a = RecordStore(schema)
        store_b = RecordStore(schema)
        for i in range(3):
            store_a.add(Record(i, i, {"name": "acme"}))
        for j in range(4):
            store_b.add(Record(j, j, {"name": "acme"}))
        # Product is 12: the guard keeps it at 12 and drops it at 11.
        kept = token_blocking_pairs(store_a, store_b, "name", max_pairs_per_token=12)
        dropped = token_blocking_pairs(store_a, store_b, "name", max_pairs_per_token=11)
        assert len(kept) == 12
        assert len(dropped) == 0
        # But max_block_size=4 keeps it: both blocks are within bound.
        assert len(token_blocking_pairs(store_a, store_b, "name", max_block_size=4)) == 12

    def test_join_matches_reference(self, stores):
        for kwargs in (
            {},
            {"max_block_size": 2},
            {"max_pairs_per_token": 3},
            {"max_block_size": 2, "max_pairs_per_token": 3},
        ):
            np.testing.assert_array_equal(
                token_blocking_pairs(*stores, "name", **kwargs),
                token_blocking_pairs_reference(*stores, "name", **kwargs),
            )

    def test_empty_result_shape(self):
        schema = ("name",)
        store_a = RecordStore(schema)
        store_b = RecordStore(schema)
        store_a.add(Record(0, 0, {"name": "aaa"}))
        store_b.add(Record(0, 0, {"name": "bbb"}))
        pairs = token_blocking_pairs(store_a, store_b, "name")
        assert pairs.shape == (0, 2)


class TestSortedNeighbourhood:
    def test_nearby_keys_paired(self, stores):
        pairs = sorted_neighbourhood_pairs(*stores, "name", window=3)
        pair_set = {tuple(p) for p in pairs}
        assert (0, 0) in pair_set  # "acme rocket" sorts beside "acme rocket pro"

    def test_window_validation(self, stores):
        with pytest.raises(ValueError, match="window"):
            sorted_neighbourhood_pairs(*stores, "name", window=1)

    def test_larger_window_supersets_smaller(self, stores):
        small = {tuple(p) for p in sorted_neighbourhood_pairs(*stores, "name", window=2)}
        large = {tuple(p) for p in sorted_neighbourhood_pairs(*stores, "name", window=5)}
        assert small <= large

    def test_pairs_are_cross_source(self, stores):
        pairs = sorted_neighbourhood_pairs(*stores, "name", window=6)
        store_a, store_b = stores
        assert np.all(pairs[:, 0] < len(store_a))
        assert np.all(pairs[:, 1] < len(store_b))

    def test_join_matches_reference(self, stores):
        for window in (2, 3, 6, 10):
            np.testing.assert_array_equal(
                sorted_neighbourhood_pairs(*stores, "name", window=window),
                sorted_neighbourhood_pairs_reference(*stores, "name", window=window),
            )
