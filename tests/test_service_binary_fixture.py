"""The committed binary-WAL fixture must keep restoring, bit-identically.

``tests/fixtures/binary_wal_session/`` is a journal written entirely in
the compact binary codec by an earlier version of the code (regenerate
with ``make_binary_wal_session.py`` only on a format migration).
Restoring it with *current* code is the binary format's backward
compatibility contract — the analogue of the v1 JSON fixture in
``test_measure_equivalence.py``.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.service.codec import decode_state
from repro.service.session import EvaluationSession
from repro.service.wal import SessionWAL

FIXTURE = Path(__file__).parent / "fixtures" / "binary_wal_session"


@pytest.fixture()
def sidecar():
    return json.loads((FIXTURE / "fixture.json").read_text())


def test_fixture_is_actually_binary(sidecar):
    shards = sorted(
        p.name for p in
        (FIXTURE / sidecar["session_id"] / "events").iterdir()
    )
    assert shards == sidecar["event_shards"]
    assert all(name.endswith(".bin") for name in shards)
    # ...and includes at least one group-commit batch shard.
    assert any(name.startswith("b") for name in shards)


def test_binary_journal_replays_as_plain_events(tmp_path, sidecar):
    events = SessionWAL(FIXTURE / sidecar["session_id"]).events()
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
    kinds = [e["kind"] for e in events]
    assert "checkpoint" in kinds and "propose" in kinds


def test_restores_and_continues_bit_identically(tmp_path, sidecar):
    session_dir = tmp_path / sidecar["session_id"]
    shutil.copytree(FIXTURE / sidecar["session_id"], session_dir)

    session = EvaluationSession.restore(session_dir)
    assert session.estimate == pytest.approx(sidecar["estimate_at_restore"])
    assert session.sampler.labels_consumed == \
        sidecar["labels_consumed_at_restore"]

    labels = np.asarray(sidecar["true_labels"], dtype=np.int64)

    def drive(target, batches):
        for __ in range(batches):
            proposal = target.propose(sidecar["batch_size"])
            target.ingest(
                proposal["ticket"],
                [int(labels[i]) for i in proposal["pending"]],
            )

    drive(session, sidecar["extra_batches"])

    reference = EvaluationSession.create(
        decode_state(sidecar["predictions"]),
        decode_state(sidecar["scores"]),
        sampler="oasis", sampler_kwargs={"n_strata": sidecar["n_strata"]},
        measure=sidecar["measure"], seed=sidecar["seed"],
    )
    drive(reference, sidecar["batches_driven"] + sidecar["extra_batches"])

    assert session.estimate == reference.estimate  # bit-identical
    assert session.sampler.labels_consumed == \
        reference.sampler.labels_consumed
