"""Tests for divergences and error metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.measures import absolute_error, kl_divergence, total_variation
from repro.utils import normalise


class TestKLDivergence:
    def test_identical_distributions_zero(self):
        p = [0.2, 0.3, 0.5]
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_known_value(self):
        p = [0.5, 0.5]
        q = [0.9, 0.1]
        expected = 0.5 * np.log(0.5 / 0.9) + 0.5 * np.log(0.5 / 0.1)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_zero_p_terms_ignored(self):
        assert kl_divergence([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_asymmetric(self):
        p = [0.8, 0.1, 0.1]
        q = [0.4, 0.4, 0.2]
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_invalid_distribution_raises(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.2], [0.5, 0.5])

    @given(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10),
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10),
    )
    def test_property_non_negative(self, wp, wq):
        n = min(len(wp), len(wq))
        p = normalise(wp[:n])
        q = normalise(wq[:n])
        assert kl_divergence(p, q) >= -1e-9


class TestTotalVariation:
    def test_identical_zero(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)

    def test_disjoint_one(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_symmetric(self):
        p = [0.8, 0.2]
        q = [0.4, 0.6]
        assert total_variation(p, q) == pytest.approx(total_variation(q, p))

    @given(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10),
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10),
    )
    def test_property_bounds(self, wp, wq):
        n = min(len(wp), len(wq))
        p = normalise(wp[:n])
        q = normalise(wq[:n])
        tv = total_variation(p, q)
        assert -1e-9 <= tv <= 1.0 + 1e-9


class TestAbsoluteError:
    def test_scalar(self):
        assert absolute_error(0.7, 0.5) == pytest.approx(0.2)

    def test_array_mean(self):
        assert absolute_error([1.0, 3.0], [0.0, 0.0]) == pytest.approx(2.0)

    def test_nan_ignored_in_arrays(self):
        assert absolute_error([np.nan, 2.0], [0.0, 0.0]) == pytest.approx(2.0)

    def test_scalar_nan_propagates(self):
        assert np.isnan(absolute_error(float("nan"), 0.5))
