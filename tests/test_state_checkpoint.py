"""Checkpoint round-trips: snapshot → restore → continue is bit-identical.

The serving layer's core guarantee (ISSUE 4): for every sampler type,
restoring a ``state_dict`` snapshot into an identically-constructed
sampler and continuing produces exactly the trajectory of the
uninterrupted run — histories, sampled indices, estimates and the RNG
stream itself.  Snapshots are pushed through the JSON codec in these
tests, so what is proven is the full wire-format round-trip, not just
in-memory copying.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AISEstimator, BetaBernoulliModel, OASISSampler, Strata, stratify
from repro.oracle import DeterministicOracle, NoisyOracle
from repro.samplers import (
    ImportanceSampler,
    OSSSampler,
    PassiveSampler,
    StratifiedSampler,
)
from repro.service.codec import load_state, dump_state

N_ITEMS = 400


def make_pool(seed=0, n=N_ITEMS):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.1).astype(np.int8)
    scores = rng.normal(size=n) + 2.5 * labels
    predictions = (scores > 0.5).astype(np.int8)
    return predictions, scores, labels


SAMPLER_FACTORIES = {
    "oasis": lambda p, s, o, seed: OASISSampler(
        p, s, o, n_strata=8, random_state=seed),
    "oasis_diag": lambda p, s, o, seed: OASISSampler(
        p, s, o, n_strata=8, record_diagnostics=True, random_state=seed),
    "passive": lambda p, s, o, seed: PassiveSampler(p, s, o, random_state=seed),
    "stratified": lambda p, s, o, seed: StratifiedSampler(
        p, s, o, n_strata=6, random_state=seed),
    "importance": lambda p, s, o, seed: ImportanceSampler(
        p, s, o, random_state=seed),
    "oss": lambda p, s, o, seed: OSSSampler(p, s, o, n_strata=6, random_state=seed),
}


def snapshot_roundtrip(sampler):
    """state_dict through the JSON wire format and back."""
    return load_state(dump_state(sampler.state_dict()))


def assert_samplers_identical(a, b):
    np.testing.assert_array_equal(
        np.asarray(a.history), np.asarray(b.history))
    assert a.budget_history == b.budget_history
    assert a.sampled_indices == b.sampled_indices
    assert a.queried_labels == b.queried_labels
    assert a.rng.bit_generator.state == b.rng.bit_generator.state
    est_a, est_b = a.estimate, b.estimate
    assert est_a == est_b or (np.isnan(est_a) and np.isnan(est_b))


@pytest.mark.parametrize("kind", sorted(SAMPLER_FACTORIES))
@pytest.mark.parametrize("batch_size", [1, 7])
def test_snapshot_restore_continue_bit_identical(kind, batch_size):
    predictions, scores, labels = make_pool()
    factory = SAMPLER_FACTORIES[kind]

    uninterrupted = factory(predictions, scores, DeterministicOracle(labels), 5)
    uninterrupted.sample(40, batch_size=batch_size)
    uninterrupted.sample(40, batch_size=batch_size)

    first = factory(predictions, scores, DeterministicOracle(labels), 5)
    first.sample(40, batch_size=batch_size)
    state = snapshot_roundtrip(first)

    # Restore into a sampler built with a DIFFERENT seed: everything
    # that matters must come from the snapshot, not the constructor.
    resumed = factory(predictions, scores, DeterministicOracle(labels), 999)
    resumed.load_state_dict(state)
    resumed.sample(40, batch_size=batch_size)

    assert_samplers_identical(resumed, uninterrupted)


@pytest.mark.parametrize("kind", sorted(SAMPLER_FACTORIES))
def test_snapshot_does_not_disturb_the_donor(kind):
    predictions, scores, labels = make_pool()
    factory = SAMPLER_FACTORIES[kind]
    a = factory(predictions, scores, DeterministicOracle(labels), 5)
    b = factory(predictions, scores, DeterministicOracle(labels), 5)
    a.sample(30)
    b.sample(30)
    a.state_dict()  # snapshotting must be a pure read
    a.sample(30)
    b.sample(30)
    assert_samplers_identical(a, b)


def test_restore_with_noisy_oracle_stream():
    """The sampler snapshot composes with an external oracle stream."""
    predictions, scores, labels = make_pool()

    def run(split):
        oracle = NoisyOracle(labels, flip_prob=0.2, random_state=77)
        sampler = OASISSampler(predictions, scores, oracle, n_strata=8,
                               random_state=5)
        if split:
            sampler.sample(25)
            state = snapshot_roundtrip(sampler)
            oracle2 = NoisyOracle(labels, flip_prob=0.2, random_state=77)
            # replay the oracle's consumed randomness: re-query the
            # same distinct indices in the same order
            oracle2.query_many(np.fromiter(sampler.queried_labels.keys(),
                                           dtype=np.int64))
            resumed = OASISSampler(predictions, scores, oracle2, n_strata=8,
                                   random_state=5)
            resumed.load_state_dict(state)
            resumed.sample(25)
            return resumed
        sampler.sample(50)
        return sampler

    assert_samplers_identical(run(split=True), run(split=False))


class TestValidation:
    def test_wrong_class_rejected(self):
        predictions, scores, labels = make_pool()
        a = PassiveSampler(predictions, scores, DeterministicOracle(labels),
                           random_state=0)
        b = ImportanceSampler(predictions, scores, DeterministicOracle(labels),
                              random_state=0)
        with pytest.raises(ValueError, match="captured from"):
            b.load_state_dict(a.state_dict())

    def test_wrong_pool_size_rejected(self):
        predictions, scores, labels = make_pool()
        a = PassiveSampler(predictions, scores, DeterministicOracle(labels),
                           random_state=0)
        small = PassiveSampler(predictions[:100], scores[:100],
                               DeterministicOracle(labels[:100]), random_state=0)
        with pytest.raises(ValueError, match="pool"):
            small.load_state_dict(a.state_dict())

    def test_wrong_stratification_rejected(self):
        predictions, scores, labels = make_pool()
        a = OASISSampler(predictions, scores, DeterministicOracle(labels),
                         n_strata=8, random_state=0)
        b = OASISSampler(predictions, scores, DeterministicOracle(labels),
                         n_strata=20, random_state=0)
        with pytest.raises(ValueError, match="stratification"):
            b.load_state_dict(a.state_dict())

    def test_unsupported_version_rejected(self):
        predictions, scores, labels = make_pool()
        a = PassiveSampler(predictions, scores, DeterministicOracle(labels),
                           random_state=0)
        state = a.state_dict()
        state["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            a.load_state_dict(state)

    def test_wrong_alpha_rejected(self):
        predictions, scores, labels = make_pool()
        a = PassiveSampler(predictions, scores, DeterministicOracle(labels),
                           alpha=0.5, random_state=0)
        b = PassiveSampler(predictions, scores, DeterministicOracle(labels),
                           alpha=0.7, random_state=0)
        with pytest.raises(ValueError, match="alpha"):
            b.load_state_dict(a.state_dict())


class TestComponentStates:
    def test_estimator_roundtrip_preserves_confidence_interval(self):
        rng = np.random.default_rng(3)
        est = AISEstimator(alpha=0.5, track_observations=True)
        for _ in range(50):
            est.update(int(rng.random() < 0.4), int(rng.random() < 0.5),
                       float(rng.random()))
        clone = AISEstimator(alpha=0.5, track_observations=True)
        clone.load_state_dict(load_state(dump_state(est.state_dict())))
        assert clone.estimate == est.estimate
        assert clone.confidence_interval() == est.confidence_interval()

    def test_model_roundtrip(self):
        prior = np.array([[1.0, 2.0, 0.5], [1.5, 1.0, 2.5]])
        model = BetaBernoulliModel(prior, decaying_prior=True)
        model.update_batch([0, 1, 2, 1], [1, 0, 1, 1])
        clone = BetaBernoulliModel(np.ones_like(prior))
        clone.load_state_dict(load_state(dump_state(model.state_dict())))
        np.testing.assert_array_equal(clone.gamma, model.gamma)
        np.testing.assert_array_equal(clone.posterior_mean(),
                                      model.posterior_mean())

    def test_strata_roundtrip_draws_identically(self):
        scores = np.random.default_rng(0).normal(size=300)
        strata = stratify(scores, 10)
        clone = Strata.from_state_dict(
            load_state(dump_state(strata.state_dict())))
        assert clone.checksum() == strata.checksum()
        rng_a, rng_b = np.random.default_rng(4), np.random.default_rng(4)
        draws = np.arange(clone.n_strata).repeat(5)
        np.testing.assert_array_equal(
            clone.sample_in_strata(draws, rng_a),
            strata.sample_in_strata(draws, rng_b),
        )


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(sorted(SAMPLER_FACTORIES)),
    seed=st.integers(0, 2**32 - 1),
    pool_seed=st.integers(0, 10),
    blocks=st.lists(st.integers(1, 16), min_size=2, max_size=10),
    data=st.data(),
)
def test_checkpoint_roundtrip_property(kind, seed, pool_seed, blocks, data):
    """Hypothesis: any block-boundary split, seed and batch sizes round-trip.

    The run is a sequence of ``sample_batch`` blocks of arbitrary
    sizes; the snapshot is taken between two blocks (block boundaries
    are where a live service snapshots — an outstanding mid-block
    proposal is covered by the session-layer tests).
    """
    predictions, scores, labels = make_pool(pool_seed, n=200)
    factory = SAMPLER_FACTORIES[kind]
    split = data.draw(st.integers(1, len(blocks) - 1))

    uninterrupted = factory(predictions, scores, DeterministicOracle(labels), seed)
    for block in blocks:
        uninterrupted.sample_batch(block)

    first = factory(predictions, scores, DeterministicOracle(labels), seed)
    for block in blocks[:split]:
        first.sample_batch(block)
    resumed = factory(predictions, scores, DeterministicOracle(labels), seed + 1)
    resumed.load_state_dict(snapshot_roundtrip(first))
    for block in blocks[split:]:
        resumed.sample_batch(block)

    assert_samplers_identical(resumed, uninterrupted)
