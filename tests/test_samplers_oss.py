"""Tests for the OSS (adaptive Neyman-allocation) sampler extension."""

import numpy as np
import pytest

from repro.measures import pool_performance
from repro.oracle import DeterministicOracle
from repro.samplers import OSSSampler, StratifiedSampler


def make(pool, seed=0, **kw):
    return OSSSampler(
        pool["predictions"],
        pool["scores"],
        DeterministicOracle(pool["true_labels"]),
        random_state=seed,
        **kw,
    )


class TestConstruction:
    def test_epsilon_validation(self, imbalanced_pool):
        with pytest.raises(ValueError, match="epsilon"):
            make(imbalanced_pool, epsilon=0.0)

    def test_strata_mismatch(self, imbalanced_pool):
        from repro.core import csf_stratify

        strata = csf_stratify(imbalanced_pool["scores"][:50], 5)
        with pytest.raises(ValueError, match="cover"):
            make(imbalanced_pool, strata=strata)

    def test_allocation_is_distribution(self, imbalanced_pool):
        sampler = make(imbalanced_pool)
        allocation = sampler.allocation()
        assert allocation.sum() == pytest.approx(1.0)
        assert np.all(allocation > 0)


class TestAdaptivity:
    def test_allocation_shifts_toward_uncertain_strata(self, imbalanced_pool):
        sampler = make(imbalanced_pool, epsilon=0.01)
        initial = sampler.allocation().copy()
        sampler.sample(800)
        final = sampler.allocation()
        assert not np.allclose(initial, final)
        # Certain (all-zero-label, heavily sampled) strata lose mass:
        # variance estimates shrink where labels are unanimous.
        heavily_sampled = sampler._n_sampled > 30
        if heavily_sampled.any():
            unanimous = heavily_sampled & (sampler._sum_true == 0)
            if unanimous.any():
                k = int(np.nonzero(unanimous)[0][0])
                assert final[k] < initial[k]

    def test_estimate_converges(self, imbalanced_pool):
        pool = imbalanced_pool
        true_f = pool_performance(pool["true_labels"], pool["predictions"])[
            "f_measure"
        ]
        errs = []
        for seed in range(5):
            sampler = make(pool, seed=seed)
            sampler.sample_until_budget(2500, max_iterations=100_000)
            if not np.isnan(sampler.estimate):
                errs.append(abs(sampler.estimate - true_f))
        assert errs and np.mean(errs) < 0.25

    def test_competitive_with_proportional(self, imbalanced_pool):
        # Neyman allocation should be no worse than proportional
        # allocation on average at a modest budget.
        pool = imbalanced_pool
        true_f = pool_performance(pool["true_labels"], pool["predictions"])[
            "f_measure"
        ]

        def mean_error(cls):
            errors = []
            for seed in range(6):
                sampler = cls(
                    pool["predictions"],
                    pool["scores"],
                    DeterministicOracle(pool["true_labels"]),
                    random_state=seed,
                )
                sampler.sample_until_budget(800, max_iterations=50_000)
                error = abs(sampler.estimate - true_f)
                errors.append(1.0 if np.isnan(error) else error)
            return np.mean(errors)

        assert mean_error(OSSSampler) <= mean_error(StratifiedSampler) * 1.25

    def test_histories_aligned(self, imbalanced_pool):
        sampler = make(imbalanced_pool)
        sampler.sample(100)
        assert len(sampler.history) == 100
        assert len(sampler.budget_history) == 100
