"""Tests for the disk-backed chunked record store.

The load-bearing property is *backend transparency*: every pipeline
layer must produce bit-identical output whether a pool lives in memory
or in npz chunks on disk, for every chunk size.  The suites here prove
the store round-trips records exactly, honours its LRU residency
budget, and that blocking and feature extraction cannot tell the
backends apart.
"""

import numpy as np
import pytest

from repro.pipeline import (
    ChunkedRecordStore,
    ChunkedStoreWriter,
    FieldSpec,
    PairFeatureExtractor,
    Record,
    RecordStore,
    minhash_lsh_pairs,
    token_blocking_pairs,
)

SCHEMA = ("name", "description", "price")


def make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    words = ["acme", "zenith", "polar", "stellar", "rocket", "lamp", "fridge"]
    records = []
    for i in range(n):
        fields = {
            "name": " ".join(rng.choice(words, size=3)),
            "description": " ".join(rng.choice(words, size=6)),
            "price": round(float(rng.uniform(1, 500)), 2),
        }
        if rng.random() < 0.1:
            del fields["price"]  # exercise missing values
        records.append(Record(record_id=i, entity_id=i % 7, fields=fields))
    return records


def memory_store(records, name="db"):
    store = RecordStore(SCHEMA, name=name)
    for record in records:
        store.add(record)
    return store


@pytest.fixture
def records():
    return make_records(100)


class TestRoundTrip:
    def test_records_identical(self, records, tmp_path):
        store = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=16
        )
        assert len(store) == len(records)
        for original, loaded in zip(records, store):
            assert loaded.record_id == original.record_id
            assert loaded.entity_id == original.entity_id
            assert loaded.fields == original.fields

    def test_getitem_and_negative_index(self, records, tmp_path):
        store = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=16
        )
        assert store[5].record_id == records[5].record_id
        assert store[-1].record_id == records[-1].record_id
        with pytest.raises(IndexError):
            store[len(records)]

    def test_from_store_preserves_name_and_schema(self, records, tmp_path):
        source = memory_store(records, name="pool-a")
        store = ChunkedRecordStore.from_store(
            tmp_path / "db", source, chunk_size=32
        )
        assert store.name == "pool-a"
        assert store.schema == source.schema

    def test_missing_fields_stay_missing(self, tmp_path):
        records = [
            Record(0, 0, {"name": "a", "price": 1.0}),
            Record(1, 1, {"name": "b"}),
        ]
        store = ChunkedRecordStore.create(tmp_path / "db", SCHEMA, records)
        assert "price" not in store[1].fields
        assert store.field_values("price") == [1.0, None]

    def test_entity_ids_cached_and_exact(self, records, tmp_path):
        store = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=16
        )
        expected = np.array([r.entity_id for r in records], dtype=np.int64)
        np.testing.assert_array_equal(store.entity_ids(), expected)
        assert store.entity_ids() is store.entity_ids()  # cached array

    def test_empty_store(self, tmp_path):
        store = ChunkedRecordStore.create(tmp_path / "db", SCHEMA, [])
        assert len(store) == 0
        assert list(store) == []
        assert store.entity_ids().shape == (0,)


class TestWriter:
    def test_chunk_size_validated(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_size"):
            ChunkedStoreWriter(tmp_path / "db", SCHEMA, chunk_size=0)

    def test_schema_violation_raises(self, tmp_path):
        writer = ChunkedStoreWriter(tmp_path / "db", SCHEMA)
        with pytest.raises(ValueError, match="outside schema"):
            writer.append(Record(0, 0, {"bogus": 1}))

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = ChunkedStoreWriter(tmp_path / "db", SCHEMA)
        writer.close()
        with pytest.raises(RuntimeError, match="closed"):
            writer.append(Record(0, 0, {"name": "x"}))
        with pytest.raises(RuntimeError, match="closed"):
            writer.close()

    def test_chunk_files_on_disk(self, records, tmp_path):
        ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=16
        )
        shards = sorted((tmp_path / "db").glob("chunk-*.npz"))
        assert len(shards) == -(-len(records) // 16)

    def test_open_without_manifest_raises(self, tmp_path):
        (tmp_path / "db").mkdir()
        with pytest.raises(FileNotFoundError, match="manifest"):
            ChunkedRecordStore(tmp_path / "db")


class TestResidency:
    def test_lru_cache_bounded(self, records, tmp_path):
        store = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=10, cache_chunks=2
        )
        for record in store:  # touch every chunk
            pass
        assert len(store._cache) <= 2

    def test_cache_chunks_validated(self, records, tmp_path):
        directory = tmp_path / "db"
        ChunkedRecordStore.create(directory, SCHEMA, records)
        with pytest.raises(ValueError, match="cache_chunks"):
            ChunkedRecordStore(directory, cache_chunks=0)

    def test_normalised_cache_lives_on_resident_chunks(self, records, tmp_path):
        store = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=10, cache_chunks=2
        )
        list(store.iter_normalised_chunks("name"))
        # Only resident chunks may carry a normalisation cache.
        assert all("name" in c.normalised for c in store._cache.values())
        assert len(store._cache) <= 2


class TestChunkSizeInvariance:
    """Every consumer is bit-identical for every chunk size."""

    @pytest.mark.parametrize("chunk_size", [1, 3, 16, 64, 1000])
    def test_column_iteration_matches_memory(self, records, tmp_path, chunk_size):
        mem = memory_store(records)
        disk = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=chunk_size
        )
        for field in SCHEMA:
            assert disk.field_values(field) == mem.field_values(field)
            assert disk.normalised_field(field) == mem.normalised_field(field)

    @pytest.mark.parametrize("rechunk", [None, 1, 7, 500])
    def test_rechunked_iteration_flattens_identically(
        self, records, tmp_path, rechunk
    ):
        disk = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=16
        )
        flat = [
            v for block in disk.iter_field_chunks("name", rechunk) for v in block
        ]
        assert flat == disk.field_values("name")
        if rechunk is not None:
            sizes = [
                len(b) for b in disk.iter_field_chunks("name", rechunk)
            ]
            assert all(s == rechunk for s in sizes[:-1])

    @pytest.mark.parametrize("chunk_size", [5, 17, 64])
    def test_blocking_backend_parity(self, records, tmp_path, chunk_size):
        mem = memory_store(records)
        disk = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=chunk_size
        )
        np.testing.assert_array_equal(
            token_blocking_pairs(mem, mem, "name"),
            token_blocking_pairs(disk, disk, "name"),
        )
        np.testing.assert_array_equal(
            minhash_lsh_pairs(mem, mem, "name", seed=3),
            minhash_lsh_pairs(disk, disk, "name", seed=3),
        )

    @pytest.mark.parametrize("chunk_size", [7, 33, 256])
    def test_scoring_bit_identical_for_every_chunk_size(
        self, records, tmp_path, chunk_size
    ):
        """The tentpole guarantee: features off disk == features off RAM."""
        mem = memory_store(records)
        disk = ChunkedRecordStore.create(
            tmp_path / "db", SCHEMA, records, chunk_size=chunk_size
        )
        specs = [
            FieldSpec("name", "short_text"),
            FieldSpec("description", "long_text"),
            FieldSpec("price", "numeric"),
        ]
        rng = np.random.default_rng(0)
        pairs = np.column_stack(
            [
                rng.integers(0, len(records), 300),
                rng.integers(0, len(records), 300),
            ]
        )
        reference = PairFeatureExtractor(specs).fit(mem, mem).transform(pairs)
        for transform_chunk in (32, 301):
            features = (
                PairFeatureExtractor(specs, chunk_size=transform_chunk)
                .fit(disk, disk)
                .transform(pairs)
            )
            np.testing.assert_array_equal(features, reference)
