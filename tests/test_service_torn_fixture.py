"""The committed torn-tail fixture must keep recovering, bit-identically.

``tests/fixtures/torn_tail_session/`` holds one journal per WAL codec,
each ending in a half-written final frame — the exact footprint of a
crash mid-append (regenerate with ``make_torn_tail_session.py`` only
on a frame-format migration).  Restoring them with *current* code is
the torn-tail recovery contract frozen in amber: the tear must be
classified as a recoverable tail (not corruption), the restored state
must land on the recorded pre-tear trajectory, and the journal must
keep appending cleanly from the recovered sequence number.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.service.session import EvaluationSession
from repro.service.wal import SessionWAL
from repro.utils import CorruptStateError

FIXTURE = Path(__file__).parent / "fixtures" / "torn_tail_session"
CODECS = ("json", "binary")


@pytest.fixture()
def sidecar():
    return json.loads((FIXTURE / "fixture.json").read_text())


@pytest.mark.parametrize("codec", CODECS)
def test_fixture_tail_really_is_torn(sidecar, codec):
    entry = sidecar["sessions"][codec]
    events = FIXTURE / entry["session_id"] / "events"
    tail = sorted(events.iterdir())[-1]
    assert tail.name == entry["torn_shard"]
    data = tail.read_bytes()
    assert data[:4] == b"WFC1"  # a framed shard...
    declared = int.from_bytes(data[4:8], "big")
    assert len(data) < 12 + declared  # ...shorter than its frame declares


@pytest.mark.parametrize("codec", CODECS)
def test_torn_fixture_restores_to_the_recorded_state(tmp_path, sidecar,
                                                     codec):
    entry = sidecar["sessions"][codec]
    session_dir = tmp_path / entry["session_id"]
    shutil.copytree(FIXTURE / entry["session_id"], session_dir)

    session = EvaluationSession.restore(
        session_dir, wal_factory=lambda d: SessionWAL(d, codec=codec))
    assert [r["file"] for r in session.wal.recovered] == \
        [entry["torn_shard"]]
    assert not (session_dir / "events" / entry["torn_shard"]).exists()

    status = session.status()
    assert session.estimate == pytest.approx(entry["estimate_at_restore"])
    assert status["draws"] == entry["draws_at_restore"]
    assert status["labels_consumed"] == entry["labels_consumed_at_restore"]
    assert status["outstanding"]["ticket"] == entry["outstanding_ticket"]
    assert status["outstanding"]["pending"] == entry["outstanding_pending"]

    # The recovered journal keeps serving: answer the re-outstanding
    # proposal, and a second restore replays it without complaint.
    labels = sidecar["true_labels"]
    session.ingest(entry["outstanding_ticket"],
                   [int(labels[i]) for i in entry["outstanding_pending"]])
    again = EvaluationSession.restore(
        session_dir, wal_factory=lambda d: SessionWAL(d, codec=codec))
    assert again.wal.recovered == []
    assert again.status()["draws"] == entry["draws_at_restore"] + \
        sidecar["batch_size"]


@pytest.mark.parametrize("codec", CODECS)
def test_fixture_tear_moved_off_the_tail_is_corruption(tmp_path, sidecar,
                                                       codec):
    """The same damaged bytes one position earlier in the log must be
    rejected: recovery's leniency is strictly a property of the tail.
    """
    entry = sidecar["sessions"][codec]
    session_dir = tmp_path / entry["session_id"]
    shutil.copytree(FIXTURE / entry["session_id"], session_dir)
    shards = sorted((session_dir / "events").iterdir())
    shards[-3].write_bytes(shards[-1].read_bytes())
    with pytest.raises(CorruptStateError):
        EvaluationSession.restore(
            session_dir, wal_factory=lambda d: SessionWAL(d, codec=codec))
