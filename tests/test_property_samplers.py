"""Hypothesis property tests for sampler invariants.

These exercise every sampler against randomly generated pools and
check the contracts the rest of the library (and the consistency
theory) relies on: budget accounting, estimate ranges, cache coherence
and instrumental-distribution floors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OASISSampler
from repro.oracle import DeterministicOracle
from repro.samplers import (
    ImportanceSampler,
    OSSSampler,
    PassiveSampler,
    StratifiedSampler,
)

ALL_SAMPLERS = [
    OASISSampler,
    ImportanceSampler,
    PassiveSampler,
    StratifiedSampler,
    OSSSampler,
]


@st.composite
def pools(draw):
    """Random small pools with at least one positive and one negative."""
    n = draw(st.integers(20, 120))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    labels = np.zeros(n, dtype=np.int8)
    n_pos = draw(st.integers(1, max(1, n // 4)))
    labels[rng.choice(n, size=n_pos, replace=False)] = 1
    scores = labels * 2.0 + rng.normal(0, 1.0, size=n)
    predictions = (scores > 1.0).astype(np.int8)
    return scores, predictions, labels, seed


@pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
class TestInvariants:
    @settings(max_examples=15, deadline=None)
    @given(pool=pools(), n_steps=st.integers(1, 60))
    def test_budget_and_history_invariants(self, sampler_cls, pool, n_steps):
        scores, predictions, labels, seed = pool
        sampler = sampler_cls(
            predictions, scores, DeterministicOracle(labels), random_state=seed
        )
        sampler.sample(n_steps)

        # Histories align with iterations.
        assert len(sampler.history) == n_steps
        assert len(sampler.budget_history) == n_steps
        assert len(sampler.sampled_indices) == n_steps

        # Budget counts distinct labels, never exceeds iterations or
        # pool size, and is non-decreasing.
        budgets = np.asarray(sampler.budget_history)
        assert budgets[-1] == len(sampler.queried_labels)
        assert budgets[-1] <= min(n_steps, len(scores))
        assert np.all(np.diff(budgets) >= 0)

        # Every estimate is NaN or within [0, 1].
        history = np.asarray(sampler.history, dtype=float)
        defined = ~np.isnan(history)
        assert np.all((history[defined] >= 0) & (history[defined] <= 1))

        # Cached labels agree with the oracle's ground truth.
        for index, label in sampler.queried_labels.items():
            assert label == labels[index]

    @settings(max_examples=10, deadline=None)
    @given(pool=pools())
    def test_determinism(self, sampler_cls, pool):
        scores, predictions, labels, seed = pool
        runs = []
        for __ in range(2):
            sampler = sampler_cls(
                predictions, scores, DeterministicOracle(labels),
                random_state=seed,
            )
            sampler.sample(30)
            runs.append(list(sampler.sampled_indices))
        assert runs[0] == runs[1]


class TestOASISSpecificProperties:
    @settings(max_examples=15, deadline=None)
    @given(pool=pools(), epsilon=st.floats(0.01, 1.0))
    def test_instrumental_floor(self, pool, epsilon):
        scores, predictions, labels, seed = pool
        sampler = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            epsilon=epsilon, random_state=seed,
        )
        sampler.sample(20)
        v = sampler.instrumental_distribution()
        floor = epsilon * sampler.strata.weights
        assert np.all(v >= floor - 1e-12)
        assert v.sum() == pytest.approx(1.0)

    @settings(max_examples=15, deadline=None)
    @given(pool=pools(), n_strata=st.integers(1, 40))
    def test_arbitrary_strata_counts(self, pool, n_strata):
        scores, predictions, labels, seed = pool
        sampler = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            n_strata=n_strata, random_state=seed,
        )
        sampler.sample(15)
        assert 1 <= sampler.n_strata <= max(n_strata, 1)
        # pi estimates stay in the open unit interval.
        pi = sampler.pi_estimate
        assert np.all((pi > 0) & (pi < 1))

    @settings(max_examples=10, deadline=None)
    @given(pool=pools(), alpha=st.floats(0.0, 1.0))
    def test_alpha_sweep(self, pool, alpha):
        scores, predictions, labels, seed = pool
        sampler = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            alpha=alpha, random_state=seed,
        )
        sampler.sample_until_budget(min(40, len(scores)))
        estimate = sampler.estimate
        assert np.isnan(estimate) or 0.0 <= estimate <= 1.0


class TestExhaustiveLabelling:
    """Labelling the whole pool must recover the exact F-measure."""

    @pytest.mark.parametrize(
        "sampler_cls", [OASISSampler, ImportanceSampler, PassiveSampler]
    )
    def test_full_budget_exactness(self, sampler_cls):
        from repro.measures import pool_performance

        rng = np.random.default_rng(0)
        n = 60
        labels = (rng.random(n) < 0.3).astype(np.int8)
        scores = labels + rng.normal(0, 0.5, size=n)
        predictions = (scores > 0.5).astype(np.int8)
        true_f = pool_performance(labels, predictions)["f_measure"]

        sampler = sampler_cls(
            predictions, scores, DeterministicOracle(labels), random_state=1
        )
        # Generous iteration allowance to hit every item via resampling.
        sampler.sample_until_budget(n, max_iterations=200_000)
        if sampler.labels_consumed == n:
            # All labels seen: weighted estimate within sampling noise of
            # the exact value (weights make it near-exact, not exact).
            assert sampler.estimate == pytest.approx(true_f, abs=0.15)
