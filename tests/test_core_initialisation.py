"""Tests for Algorithm 2 initialisation."""

import numpy as np
import pytest

from repro.core import csf_stratify, initialise_from_scores
from repro.core.stratification import Strata


def probability_pool(n=200, seed=0):
    rng = np.random.default_rng(seed)
    scores = rng.beta(1, 8, size=n)
    predictions = (scores > 0.5).astype(np.int8)
    return scores, predictions


class TestInitialisation:
    def test_pi_from_probability_scores(self):
        scores, predictions = probability_pool()
        strata = csf_stratify(scores, 10)
        init = initialise_from_scores(strata, predictions)
        # With calibrated scores, pi guesses are the stratum mean scores.
        np.testing.assert_allclose(
            init.pi, np.clip(strata.mean_scores(), 1e-6, 1 - 1e-6), atol=1e-9
        )

    def test_pi_from_margin_scores_sigmoid(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=300)
        predictions = (scores > 0).astype(np.int8)
        strata = csf_stratify(scores, 8)
        init = initialise_from_scores(strata, predictions, threshold=0.0)
        assert np.all((init.pi > 0) & (init.pi < 1))
        # Higher-score strata get higher pi.
        assert np.all(np.diff(init.pi) >= -1e-12)

    def test_threshold_shifts_sigmoid(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(size=300)
        predictions = (scores > 1.0).astype(np.int8)
        strata = csf_stratify(scores, 8)
        low = initialise_from_scores(strata, predictions, threshold=0.0)
        high = initialise_from_scores(strata, predictions, threshold=1.0)
        assert np.all(high.pi <= low.pi + 1e-12)

    def test_prior_strength_default_2k(self):
        scores, predictions = probability_pool()
        strata = csf_stratify(scores, 10)
        init = initialise_from_scores(strata, predictions)
        column_sums = init.prior_gamma.sum(axis=0)
        np.testing.assert_allclose(column_sums, 2.0 * strata.n_strata)

    def test_prior_gamma_structure(self):
        scores, predictions = probability_pool()
        strata = csf_stratify(scores, 10)
        init = initialise_from_scores(strata, predictions, prior_strength=4.0)
        np.testing.assert_allclose(init.prior_gamma[0], 4.0 * init.pi)
        np.testing.assert_allclose(init.prior_gamma[1], 4.0 * (1 - init.pi))

    def test_f_guess_reasonable_for_good_scores(self):
        # Scores that equal the true probabilities and a prediction
        # threshold at 0.5 should give an F guess in (0, 1).
        scores, predictions = probability_pool()
        strata = csf_stratify(scores, 15)
        init = initialise_from_scores(strata, predictions)
        assert 0.0 < init.f_measure < 1.0

    def test_f_guess_nan_when_nothing_predicted_or_scored(self):
        strata = Strata([0, 0], np.array([0.0, 0.0]))
        init = initialise_from_scores(
            strata, [0, 0], scores_are_probabilities=True
        )
        # pi is clipped to ~1e-6 so the denominator is positive but the
        # estimated F is essentially zero.
        assert init.f_measure == pytest.approx(0.0, abs=1e-5)

    def test_alpha_one_gives_precision_style_guess(self):
        scores, predictions = probability_pool()
        strata = csf_stratify(scores, 10)
        init = initialise_from_scores(strata, predictions, alpha=1.0)
        sizes = strata.sizes.astype(float)
        lam = strata.stratum_means(predictions)
        expected = float(np.sum(sizes * init.pi * lam) / np.sum(sizes * lam))
        assert init.f_measure == pytest.approx(expected)

    def test_prediction_misalignment_raises(self):
        scores, predictions = probability_pool()
        strata = csf_stratify(scores, 5)
        with pytest.raises(ValueError, match="align"):
            initialise_from_scores(strata, predictions[:-5])

    def test_invalid_prior_strength(self):
        scores, predictions = probability_pool()
        strata = csf_stratify(scores, 5)
        with pytest.raises(ValueError, match="prior_strength"):
            initialise_from_scores(strata, predictions, prior_strength=0.0)

    def test_explicit_probability_flag_overrides_detection(self):
        # Margin-looking scores forced to be treated as probabilities.
        scores = np.array([0.1, 0.2, 0.9, 0.8])
        predictions = np.array([0, 0, 1, 1])
        strata = csf_stratify(scores, 2)
        as_probs = initialise_from_scores(
            strata, predictions, scores_are_probabilities=True
        )
        as_margins = initialise_from_scores(
            strata, predictions, scores_are_probabilities=False
        )
        assert not np.allclose(as_probs.pi, as_margins.pi)
