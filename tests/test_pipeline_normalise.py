"""Tests for string normalisation and numeric imputation."""

import numpy as np
import pytest

from repro.pipeline import impute_missing_numeric, normalise_string, to_float


class TestNormaliseString:
    def test_lowercases(self):
        assert normalise_string("HeLLo") == "hello"

    def test_strips_symbols(self):
        assert normalise_string("a.b,c!d?") == "a b c d"

    def test_strips_accents(self):
        assert normalise_string("café résumé") == "cafe resume"

    def test_collapses_whitespace(self):
        assert normalise_string("  a   b  ") == "a b"

    def test_none_becomes_empty(self):
        assert normalise_string(None) == ""

    def test_numbers_survive(self):
        assert normalise_string("Model X-200") == "model x 200"

    def test_idempotent(self):
        once = normalise_string("Éclair #42!")
        assert normalise_string(once) == once


class TestToFloat:
    def test_plain_number(self):
        assert to_float("3.5") == pytest.approx(3.5)

    def test_int_passthrough(self):
        assert to_float(7) == pytest.approx(7.0)

    def test_currency_and_commas(self):
        assert to_float("$1,234.50") == pytest.approx(1234.5)

    def test_none_is_nan(self):
        assert np.isnan(to_float(None))

    def test_garbage_is_nan(self):
        assert np.isnan(to_float("n/a"))

    def test_empty_string_is_nan(self):
        assert np.isnan(to_float("  "))


class TestImputeMissingNumeric:
    def test_no_missing_unchanged(self):
        out = impute_missing_numeric([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_mean_imputation(self):
        out = impute_missing_numeric([1.0, None, 3.0])
        assert out[1] == pytest.approx(2.0)

    def test_all_missing_gives_zeros(self):
        out = impute_missing_numeric([None, "bad"])
        np.testing.assert_allclose(out, [0.0, 0.0])

    def test_mixed_types(self):
        out = impute_missing_numeric(["5", 15, None])
        assert out[2] == pytest.approx(10.0)
