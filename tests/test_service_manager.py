"""SessionManager: registry, capacity, eviction-to-disk, concurrency."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import (
    CapacityError,
    SessionManager,
    SessionNotFoundError,
)


def make_pool(seed=0, n=200):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.1).astype(np.int8)
    scores = rng.normal(size=n) + 2.5 * labels
    predictions = (scores > 0.5).astype(np.int8)
    return predictions, scores, labels


def drive_one_batch(session, labels, batch=8):
    proposal = session.propose(batch)
    session.ingest(proposal["ticket"],
                   [int(labels[i]) for i in proposal["pending"]])


class TestRegistry:
    def test_create_get_close(self, tmp_path):
        predictions, scores, labels = make_pool()
        manager = SessionManager(tmp_path)
        session = manager.create_session(predictions, scores, seed=1,
                                         session_id="alpha")
        assert manager.get("alpha") is session
        drive_one_batch(session, labels)
        manager.close_session("alpha")
        assert manager.resident_count == 0
        # the journal survives: the session is restorable, not gone
        assert any(s["session_id"] == "alpha" for s in manager.list_sessions())

    def test_memory_only_manager(self):
        predictions, scores, labels = make_pool()
        manager = SessionManager(None)
        session = manager.create_session(predictions, scores, seed=1)
        drive_one_batch(session, labels)
        assert session.wal is None
        assert manager.get(session.session_id) is session

    def test_get_unknown_raises(self, tmp_path):
        with pytest.raises(SessionNotFoundError):
            SessionManager(tmp_path).get("ghost")

    def test_duplicate_id_rejected(self, tmp_path):
        predictions, scores, __ = make_pool()
        manager = SessionManager(tmp_path)
        manager.create_session(predictions, scores, session_id="dup")
        with pytest.raises(ValueError, match="already exists"):
            manager.create_session(predictions, scores, session_id="dup")

    def test_duplicate_detected_across_restarts(self, tmp_path):
        predictions, scores, __ = make_pool()
        SessionManager(tmp_path).create_session(predictions, scores,
                                                session_id="dup")
        fresh = SessionManager(tmp_path)  # new manager, same root
        with pytest.raises(ValueError, match="already exists"):
            fresh.create_session(predictions, scores, session_id="dup")

    def test_invalid_session_id_rejected(self, tmp_path):
        predictions, scores, __ = make_pool()
        manager = SessionManager(tmp_path)
        for bad in ["", "a/b", "../x", "a" * 80]:
            with pytest.raises(ValueError, match="session_id"):
                manager.create_session(predictions, scores, session_id=bad)


class TestEviction:
    def test_evict_and_transparent_restore(self, tmp_path):
        predictions, scores, labels = make_pool()
        manager = SessionManager(tmp_path)
        session = manager.create_session(predictions, scores, seed=1,
                                         session_id="evictee")
        drive_one_batch(session, labels)
        history = list(session.sampler.history)
        manager.evict("evictee")
        assert manager.resident_count == 0

        restored = manager.get("evictee")
        assert restored is not session  # reloaded from disk
        np.testing.assert_array_equal(
            np.asarray(restored.sampler.history), np.asarray(history))
        drive_one_batch(restored, labels)  # continues cleanly

    def test_capacity_evicts_lru(self, tmp_path):
        predictions, scores, labels = make_pool()
        manager = SessionManager(tmp_path, capacity=2)
        manager.create_session(predictions, scores, session_id="a")
        manager.create_session(predictions, scores, session_id="b")
        manager.get("a")  # a is now more recently used than b
        manager.create_session(predictions, scores, session_id="c")
        assert manager.resident_count == 2
        resident = {s["session_id"] for s in manager.list_sessions()
                    if s.get("resident")}
        assert resident == {"a", "c"}  # b (LRU) went to disk
        assert manager.get("b") is not None  # and comes back on demand

    def test_memory_only_capacity_raises(self):
        predictions, scores, __ = make_pool()
        manager = SessionManager(None, capacity=1)
        manager.create_session(predictions, scores)
        with pytest.raises(CapacityError):
            manager.create_session(predictions, scores)

    def test_evict_idle(self, tmp_path):
        predictions, scores, __ = make_pool()
        manager = SessionManager(tmp_path)
        manager.create_session(predictions, scores, session_id="idle")
        assert manager.evict_idle(max_idle_seconds=0) == ["idle"]
        assert manager.resident_count == 0

    def test_stale_handle_cannot_write_after_eviction(self, tmp_path):
        """A client holding an evicted instance must not fork the journal."""
        from repro.service import SessionConflictError

        predictions, scores, labels = make_pool()
        manager = SessionManager(tmp_path)
        stale = manager.create_session(predictions, scores, seed=4,
                                       session_id="stale")
        drive_one_batch(stale, labels)
        manager.evict("stale")
        with pytest.raises(SessionConflictError, match="re-fetch"):
            stale.propose(4)
        # the restored instance owns the journal and works normally
        drive_one_batch(manager.get("stale"), labels)

    def test_traversal_ids_not_resolved_from_disk(self, tmp_path):
        """Lookup applies the same id validation as create."""
        predictions, scores, __ = make_pool()
        root = tmp_path / "root"
        manager = SessionManager(root)
        # a manifest OUTSIDE the root must not be reachable via '..'
        manager.create_session(predictions, scores, session_id="real")
        (tmp_path / "manifest.json").write_text("{}")
        with pytest.raises(SessionNotFoundError):
            manager.get("..")

    def test_eviction_preserves_outstanding_proposal(self, tmp_path):
        predictions, scores, labels = make_pool()
        manager = SessionManager(tmp_path)
        session = manager.create_session(predictions, scores, seed=4,
                                         session_id="midbatch")
        proposal = session.propose(10)
        manager.evict("midbatch")
        restored = manager.get("midbatch")
        status = restored.status()
        assert status["outstanding"]["ticket"] == proposal["ticket"]
        assert status["outstanding"]["pending"] == proposal["pending"]
        restored.ingest(proposal["ticket"],
                        [int(labels[i]) for i in proposal["pending"]])


class TestConcurrency:
    def test_parallel_clients_on_separate_sessions(self, tmp_path):
        predictions, scores, labels = make_pool()
        manager = SessionManager(tmp_path)
        ids = [f"worker-{i}" for i in range(4)]
        for session_id in ids:
            manager.create_session(predictions, scores, seed=5,
                                   session_id=session_id)
        errors = []

        def client(session_id):
            try:
                for __ in range(10):
                    drive_one_batch(manager.get(session_id), labels, batch=6)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((session_id, exc))

        threads = [threading.Thread(target=client, args=(sid,)) for sid in ids]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # same seed + same label source => all four identical trajectories
        histories = [manager.get(sid).sampler.history for sid in ids]
        for history in histories[1:]:
            np.testing.assert_array_equal(np.asarray(history),
                                          np.asarray(histories[0]))

    def test_racing_clients_on_one_session_stay_consistent(self, tmp_path):
        predictions, scores, labels = make_pool()
        manager = SessionManager(tmp_path)
        manager.create_session(predictions, scores, seed=5, session_id="shared")
        completed = []

        def client():
            for __ in range(20):
                session = manager.get("shared")
                with session._lock:  # propose+ingest as one unit
                    proposal = session.propose(3)
                    session.ingest(
                        proposal["ticket"],
                        [int(labels[i]) for i in proposal["pending"]])
                completed.append(proposal["ticket"])

        threads = [threading.Thread(target=client) for __ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(completed) == list(range(1, 61))  # every ticket exactly once
        assert len(manager.get("shared").sampler.history) == 180
