"""Tests for the shared sampler base class contract."""

import numpy as np
import pytest

from repro.oracle import DeterministicOracle
from repro.samplers import PassiveSampler


def make(n=50, seed=0):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.3).astype(np.int8)
    scores = labels + rng.normal(0, 0.4, size=n)
    predictions = (scores > 0.5).astype(np.int8)
    return PassiveSampler(
        predictions, scores, DeterministicOracle(labels), random_state=seed
    )


class TestValidation:
    def test_misaligned_inputs(self):
        oracle = DeterministicOracle([1, 0])
        with pytest.raises(ValueError, match="aligned"):
            PassiveSampler(np.array([1, 0]), np.array([0.5]), oracle)

    def test_two_dimensional_rejected(self):
        oracle = DeterministicOracle([1, 0])
        with pytest.raises(ValueError):
            PassiveSampler(
                np.array([[1, 0]]), np.array([[0.5, 0.2]]), oracle
            )

    def test_bad_oracle_label_rejected(self):
        class BadOracle:
            def label(self, index):
                return 7

        sampler = PassiveSampler(
            np.array([1, 0]), np.array([1.0, 0.0]), BadOracle(), random_state=0
        )
        with pytest.raises(ValueError, match="non-binary"):
            sampler.sample(5)


class TestSamplingContract:
    def test_estimate_nan_before_sampling(self):
        assert np.isnan(make().estimate)

    def test_sample_zero_iterations(self):
        sampler = make()
        sampler.sample(0)
        assert sampler.history == []

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError, match="n_iterations"):
            make().sample(-1)

    def test_sample_distinct_alias(self):
        a = make(seed=3)
        b = make(seed=3)
        a.sample_until_budget(20)
        b.sample_distinct(20)
        assert a.labels_consumed == b.labels_consumed
        np.testing.assert_allclose(a.history, b.history, equal_nan=True)

    def test_budget_capped_at_pool_size(self):
        sampler = make(n=30)
        sampler.sample_until_budget(10_000, max_iterations=100_000)
        assert sampler.labels_consumed <= 30

    def test_max_iterations_bounds_loop(self):
        sampler = make(n=40)
        sampler.sample_until_budget(40, max_iterations=5)
        assert len(sampler.history) == 5

    def test_estimate_at_budgets_empty_history(self):
        sampler = make()
        out = sampler.estimate_at_budgets([10, 20])
        assert np.isnan(out).all()

    def test_estimate_at_budgets_before_first_label(self):
        sampler = make()
        sampler.sample(10)
        out = sampler.estimate_at_budgets([0])
        # Budget 0 precedes every record: NaN.
        assert np.isnan(out[0])

    def test_query_label_caches(self):
        sampler = make()
        first = sampler._query_label(3)
        second = sampler._query_label(3)
        assert first == second
        assert sampler.labels_consumed == 1


class TestExactBudget:
    """Batched runs bill the oracle exactly ``budget`` distinct labels.

    Regression for the old behaviour where the final block could
    overshoot by up to ``batch_size - 1`` labels.
    """

    @pytest.mark.parametrize("batch_size", [1, 3, 16, 64])
    def test_labels_consumed_is_exact(self, batch_size):
        sampler = make(n=200, seed=1)
        sampler.sample_until_budget(50, batch_size=batch_size)
        assert sampler.labels_consumed == 50

    def test_identical_bill_across_batch_sizes(self):
        consumed = []
        for batch_size in (1, 4, 7, 32, 128):
            sampler = make(n=300, seed=2)
            sampler.sample_until_budget(80, batch_size=batch_size)
            consumed.append(sampler.labels_consumed)
        assert consumed == [80] * len(consumed)

    def test_budget_smaller_than_batch(self):
        sampler = make(n=200, seed=3)
        sampler.sample_until_budget(5, batch_size=64)
        assert sampler.labels_consumed == 5

    def test_exactness_survives_cache_hits(self):
        # A tiny pool forces many re-draws of cached items inside each
        # block; the cap must count *distinct* labels, not draws.
        sampler = make(n=25, seed=4)
        sampler.sample_until_budget(20, batch_size=8)
        assert sampler.labels_consumed == 20

    def test_max_iterations_still_bounds(self):
        sampler = make(n=40, seed=5)
        sampler.sample_until_budget(40, batch_size=8, max_iterations=6)
        assert len(sampler.history) == 6


class TestEstimateAtBudgets:
    """Edge cases of the budget-indexed history lookup."""

    def _with_history(self, history, budget_history):
        sampler = make()
        sampler.history = list(history)
        sampler.budget_history = list(budget_history)
        return sampler

    def test_budgets_below_first_entry_are_nan(self):
        sampler = self._with_history([0.4, 0.5], [3, 4])
        out = sampler.estimate_at_budgets([1, 2, 3])
        assert np.isnan(out[0]) and np.isnan(out[1])
        assert out[2] == pytest.approx(0.4)

    def test_nan_prefixed_history_returns_nan_not_skip(self):
        # Undefined early estimates are reported as NaN at their
        # budgets, not papered over with a later defined value.
        sampler = self._with_history(
            [np.nan, np.nan, 0.5, 0.6], [1, 2, 2, 3]
        )
        out = sampler.estimate_at_budgets([1, 2, 3, 10])
        assert np.isnan(out[0])
        assert out[1] == pytest.approx(0.5)  # latest entry at budget 2
        assert out[2] == pytest.approx(0.6)
        assert out[3] == pytest.approx(0.6)  # past the end: last estimate

    def test_intra_batch_plateaus_pick_latest(self):
        # Cached re-draws add history entries without consuming budget;
        # the lookup must return the *latest* estimate at each budget.
        sampler = self._with_history(
            [0.1, 0.2, 0.3, 0.4, 0.5], [1, 1, 1, 2, 2]
        )
        out = sampler.estimate_at_budgets([1, 2])
        assert out[0] == pytest.approx(0.3)
        assert out[1] == pytest.approx(0.5)

    def test_batched_run_consistent_with_history(self):
        # Cross-check the vectorised lookup against a manual scan on a
        # real batched run with heavy intra-batch cache re-draws.
        sampler = make(n=25, seed=7)
        sampler.sample_until_budget(18, batch_size=8)
        budgets = [1, 5, 10, 18]
        out = sampler.estimate_at_budgets(budgets)
        consumed = np.asarray(sampler.budget_history)
        history = np.asarray(sampler.history)
        for b, got in zip(budgets, out):
            positions = np.flatnonzero(consumed <= b)
            expected = history[positions[-1]] if len(positions) else np.nan
            np.testing.assert_equal(got, expected)
