"""Tests for the shared sampler base class contract."""

import numpy as np
import pytest

from repro.oracle import DeterministicOracle
from repro.samplers import PassiveSampler


def make(n=50, seed=0):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.3).astype(np.int8)
    scores = labels + rng.normal(0, 0.4, size=n)
    predictions = (scores > 0.5).astype(np.int8)
    return PassiveSampler(
        predictions, scores, DeterministicOracle(labels), random_state=seed
    )


class TestValidation:
    def test_misaligned_inputs(self):
        oracle = DeterministicOracle([1, 0])
        with pytest.raises(ValueError, match="aligned"):
            PassiveSampler(np.array([1, 0]), np.array([0.5]), oracle)

    def test_two_dimensional_rejected(self):
        oracle = DeterministicOracle([1, 0])
        with pytest.raises(ValueError):
            PassiveSampler(
                np.array([[1, 0]]), np.array([[0.5, 0.2]]), oracle
            )

    def test_bad_oracle_label_rejected(self):
        class BadOracle:
            def label(self, index):
                return 7

        sampler = PassiveSampler(
            np.array([1, 0]), np.array([1.0, 0.0]), BadOracle(), random_state=0
        )
        with pytest.raises(ValueError, match="non-binary"):
            sampler.sample(5)


class TestSamplingContract:
    def test_estimate_nan_before_sampling(self):
        assert np.isnan(make().estimate)

    def test_sample_zero_iterations(self):
        sampler = make()
        sampler.sample(0)
        assert sampler.history == []

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make().sample(-1)

    def test_sample_distinct_alias(self):
        a = make(seed=3)
        b = make(seed=3)
        a.sample_until_budget(20)
        b.sample_distinct(20)
        assert a.labels_consumed == b.labels_consumed
        np.testing.assert_allclose(a.history, b.history, equal_nan=True)

    def test_budget_capped_at_pool_size(self):
        sampler = make(n=30)
        sampler.sample_until_budget(10_000, max_iterations=100_000)
        assert sampler.labels_consumed <= 30

    def test_max_iterations_bounds_loop(self):
        sampler = make(n=40)
        sampler.sample_until_budget(40, max_iterations=5)
        assert len(sampler.history) == 5

    def test_estimate_at_budgets_empty_history(self):
        sampler = make()
        out = sampler.estimate_at_budgets([10, 20])
        assert np.isnan(out).all()

    def test_estimate_at_budgets_before_first_label(self):
        sampler = make()
        sampler.sample(10)
        out = sampler.estimate_at_budgets([0])
        # Budget 0 precedes every record: NaN.
        assert np.isnan(out[0])

    def test_query_label_caches(self):
        sampler = make()
        first = sampler._query_label(3)
        second = sampler._query_label(3)
        assert first == second
        assert sampler.labels_consumed == 1
