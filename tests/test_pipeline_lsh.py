"""MinHash-LSH blocking: soundness, dedup exactness and recall floor.

LSH is the approximate at-scale replacement for exact token blocking,
so its contract is asymmetric: it may *miss* pairs (bounded below by
the seeded recall floor against the exact oracle) but everything it
emits must be sound — a subset of the cross product, exactly
deduplicated, deterministic in the seed and invariant to the chunk
size it streams columns with.  The external-memory sorted
neighbourhood must be bit-identical to the in-memory variant.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.scale import ScaleSpec, generate_scale_sources
from repro.pipeline import (
    Record,
    RecordStore,
    minhash_lsh_pairs,
    sorted_neighbourhood_pairs,
    sorted_neighbourhood_pairs_external,
    token_blocking_pairs,
)

# Small word pool: collisions (shared tokens) are likely, which is
# what exercises the banding and dedup paths.
_WORDS = ["acme", "zen", "polar", "rocket", "lamp", "", "中文", "a-b"]

name_values = st.one_of(
    st.none(),
    st.lists(st.sampled_from(_WORDS), min_size=0, max_size=4).map(" ".join),
)
name_lists = st.lists(name_values, min_size=1, max_size=14)


def _store(names) -> RecordStore:
    store = RecordStore(("name",))
    for i, name in enumerate(names):
        fields = {} if name is None else {"name": name}
        store.add(Record(i, i, fields))
    return store


@settings(max_examples=40, deadline=None)
@given(
    names_a=name_lists,
    names_b=name_lists,
    seed=st.integers(0, 10**6),
    bands=st.integers(1, 8),
    rows=st.integers(1, 4),
)
def test_candidates_sound_and_deduplicated(names_a, names_b, seed, bands, rows):
    """Every emitted pair is in-range, unique and lexicographically sorted."""
    store_a, store_b = _store(names_a), _store(names_b)
    pairs = minhash_lsh_pairs(
        store_a, store_b, "name", bands=bands, rows=rows, seed=seed
    )
    assert pairs.shape[1] == 2
    assert np.all((pairs[:, 0] >= 0) & (pairs[:, 0] < len(store_a)))
    assert np.all((pairs[:, 1] >= 0) & (pairs[:, 1] < len(store_b)))
    # Dedup exactness of the a*n_b+b integer-key encoding: no repeated
    # rows, and the canonical np.unique (lexicographic) order.
    keys = pairs[:, 0] * len(store_b) + pairs[:, 1]
    assert len(np.unique(keys)) == len(keys)
    assert np.all(np.diff(keys) > 0) if len(keys) > 1 else True


@settings(max_examples=25, deadline=None)
@given(names_a=name_lists, names_b=name_lists, seed=st.integers(0, 10**6))
def test_identical_keys_always_pair(names_a, names_b, seed):
    """Records with equal non-empty keys agree on every MinHash band."""
    store_a, store_b = _store(names_a), _store(names_b)
    pairs = minhash_lsh_pairs(store_a, store_b, "name", seed=seed)
    found = {tuple(p) for p in pairs}
    keys_a = store_a.normalised_field("name")
    keys_b = store_b.normalised_field("name")
    for i, key_a in enumerate(keys_a):
        if not key_a:
            continue
        for j, key_b in enumerate(keys_b):
            if key_a == key_b:
                assert (i, j) in found


@settings(max_examples=25, deadline=None)
@given(
    names_a=name_lists,
    names_b=name_lists,
    seed=st.integers(0, 10**6),
    chunk_size=st.integers(1, 20),
)
def test_chunk_size_invariance(names_a, names_b, seed, chunk_size):
    """The streamed signature is independent of column chunking."""
    store_a, store_b = _store(names_a), _store(names_b)
    reference = minhash_lsh_pairs(store_a, store_b, "name", seed=seed)
    chunked = minhash_lsh_pairs(
        store_a, store_b, "name", seed=seed, chunk_size=chunk_size
    )
    np.testing.assert_array_equal(reference, chunked)


@settings(max_examples=25, deadline=None)
@given(
    names_a=name_lists,
    names_b=name_lists,
    window=st.integers(2, 6),
    run_size=st.integers(1, 8),
)
def test_external_snm_matches_in_memory(names_a, names_b, window, run_size):
    """Disk-run merge == in-memory sort, bit for bit."""
    store_a, store_b = _store(names_a), _store(names_b)
    in_memory = sorted_neighbourhood_pairs(
        store_a, store_b, "name", window=window
    )
    external = sorted_neighbourhood_pairs_external(
        store_a, store_b, "name", window=window, run_size=run_size
    )
    np.testing.assert_array_equal(in_memory, external)


class TestRecallFloor:
    """Seeded recall floor on a corrupted-duplicate pool."""

    @pytest.fixture(scope="class")
    def pool(self):
        spec = ScaleSpec(name="tiny", n_entities=400)
        return generate_scale_sources(spec, seed=11)

    def test_recall_vs_exact_token_blocking(self, pool):
        """Of the true matches exact blocking finds, LSH keeps >= 0.9."""
        candidates = minhash_lsh_pairs(
            pool.store_a, pool.store_b, "name",
            bands=32, rows=4, seed=0, ngram_size=3,
        )
        exact = token_blocking_pairs(pool.store_a, pool.store_b, "name")
        n_b = len(pool.store_b)
        true_keys = pool.true_match_pairs()[:, 0] * n_b + pool.true_match_pairs()[:, 1]
        exact_keys = exact[:, 0] * n_b + exact[:, 1]
        candidate_keys = candidates[:, 0] * n_b + candidates[:, 1]
        oracle_hits = np.intersect1d(true_keys, exact_keys)
        assert len(oracle_hits) > 0
        recall = np.isin(oracle_hits, candidate_keys).mean()
        assert recall >= 0.9

    def test_lsh_prunes_the_pair_space(self, pool):
        candidates = minhash_lsh_pairs(
            pool.store_a, pool.store_b, "name",
            bands=32, rows=4, seed=0, ngram_size=3,
        )
        full = len(pool.store_a) * len(pool.store_b)
        assert len(candidates) < 0.05 * full

    def test_deterministic_in_seed(self, pool):
        first = minhash_lsh_pairs(pool.store_a, pool.store_b, "name", seed=5)
        again = minhash_lsh_pairs(pool.store_a, pool.store_b, "name", seed=5)
        other = minhash_lsh_pairs(pool.store_a, pool.store_b, "name", seed=6)
        np.testing.assert_array_equal(first, again)
        assert len(first) > 0
        # A different seed redraws the hash family; the candidate set
        # is allowed to differ (and virtually always does).
        same = len(first) == len(other) and bool(np.all(first == other))
        assert not same


class TestNgramTokens:
    def test_ngrams_survive_a_typo(self):
        """Character n-grams pair a typo'd duplicate that word tokens miss."""
        store_a = _store(["farnsworth chronoscope"])
        store_b = _store(["farnswroth chronoscpoe"])  # two transpositions
        word_pairs = minhash_lsh_pairs(
            store_a, store_b, "name", bands=32, rows=4, seed=0
        )
        ngram_pairs = minhash_lsh_pairs(
            store_a, store_b, "name", bands=32, rows=4, seed=0, ngram_size=3
        )
        assert (0, 0) not in {tuple(p) for p in word_pairs}
        assert (0, 0) in {tuple(p) for p in ngram_pairs}

    def test_bands_rows_validated(self):
        store = _store(["a b"])
        with pytest.raises(ValueError):
            minhash_lsh_pairs(store, store, "name", bands=0)
        with pytest.raises(ValueError):
            minhash_lsh_pairs(store, store, "name", rows=0)
