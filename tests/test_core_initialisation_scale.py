"""Tests for the scale-aware margin initialisation extension."""

import numpy as np
import pytest

from repro.core import csf_stratify, initialise_from_scores
from repro.core.oasis import OASISSampler
from repro.oracle import DeterministicOracle
from repro.samplers import ImportanceSampler


@pytest.fixture
def margin_pool(rng):
    scores = rng.normal(scale=0.3, size=400)  # small-scale margins
    predictions = (scores > 0.2).astype(np.int8)
    return scores, predictions


class TestScoreScaleInitialisation:
    def test_default_matches_raw_paper_behaviour(self, margin_pool):
        scores, predictions = margin_pool
        strata = csf_stratify(scores, 8)
        default = initialise_from_scores(strata, predictions, threshold=0.2)
        explicit_raw = initialise_from_scores(
            strata, predictions, threshold=0.2, score_scale=1.0
        )
        np.testing.assert_allclose(default.pi, explicit_raw.pi)

    def test_auto_scale_sharpens_priors(self, margin_pool):
        scores, predictions = margin_pool
        strata = csf_stratify(scores, 8)
        raw = initialise_from_scores(strata, predictions, threshold=0.2)
        auto = initialise_from_scores(
            strata, predictions, threshold=0.2, score_scale="auto"
        )
        # Sharper squash: the spread of pi guesses widens.
        assert auto.pi.max() - auto.pi.min() > raw.pi.max() - raw.pi.min()

    def test_numeric_scale(self, margin_pool):
        scores, predictions = margin_pool
        strata = csf_stratify(scores, 8)
        sharp = initialise_from_scores(
            strata, predictions, threshold=0.2, score_scale=0.05
        )
        assert np.all((sharp.pi > 0) & (sharp.pi < 1))
        # Extremely sharp squash saturates the extremes.
        assert sharp.pi.min() < 0.05
        assert sharp.pi.max() > 0.95

    def test_invalid_scale(self, margin_pool):
        scores, predictions = margin_pool
        strata = csf_stratify(scores, 8)
        with pytest.raises(ValueError, match="score_scale"):
            initialise_from_scores(
                strata, predictions, score_scale=-1.0,
                scores_are_probabilities=False,
            )

    def test_probability_scores_ignore_scale(self, rng):
        scores = rng.random(200)
        predictions = (scores > 0.5).astype(np.int8)
        strata = csf_stratify(scores, 5)
        a = initialise_from_scores(
            strata, predictions, scores_are_probabilities=True
        )
        b = initialise_from_scores(
            strata, predictions, scores_are_probabilities=True,
            score_scale=0.01,
        )
        np.testing.assert_allclose(a.pi, b.pi)

    def test_constant_scores_auto_scale_safe(self):
        scores = np.full(50, 0.7)
        predictions = np.ones(50, dtype=np.int8)
        strata = csf_stratify(scores, 5)
        init = initialise_from_scores(
            strata, predictions, scores_are_probabilities=False,
            score_scale="auto",
        )
        assert np.all(np.isfinite(init.pi))


class TestScoreScaleSamplers:
    def test_oasis_accepts_scale(self, imbalanced_pool):
        pool = imbalanced_pool
        sampler = OASISSampler(
            pool["predictions"],
            pool["scores"],
            DeterministicOracle(pool["true_labels"]),
            score_scale="auto",
            random_state=0,
        )
        sampler.sample_until_budget(100)
        assert 0.0 <= sampler.estimate <= 1.0

    def test_is_accepts_scale(self, imbalanced_pool):
        pool = imbalanced_pool
        sampler = ImportanceSampler(
            pool["predictions"],
            pool["scores"],
            DeterministicOracle(pool["true_labels"]),
            score_scale="auto",
            random_state=0,
        )
        sampler.sample_until_budget(100)
        assert 0.0 <= sampler.estimate <= 1.0

    def test_is_invalid_scale(self, imbalanced_pool):
        pool = imbalanced_pool
        with pytest.raises(ValueError, match="score_scale"):
            ImportanceSampler(
                pool["predictions"],
                pool["scores"],
                DeterministicOracle(pool["true_labels"]),
                score_scale=0.0,
            )

    def test_scale_changes_instrumental(self, imbalanced_pool):
        pool = imbalanced_pool
        raw = ImportanceSampler(
            pool["predictions"], pool["scores"],
            DeterministicOracle(pool["true_labels"]), random_state=0,
        )
        sharp = ImportanceSampler(
            pool["predictions"], pool["scores"],
            DeterministicOracle(pool["true_labels"]),
            score_scale=0.1, random_state=0,
        )
        assert not np.allclose(raw.instrumental, sharp.instrumental)
