"""Tests for the AIS F-measure estimator (Eqn 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AISEstimator, sample_f_measure_history
from repro.measures import f_measure


class TestAISEstimator:
    def test_undefined_before_positives(self):
        est = AISEstimator()
        assert np.isnan(est.estimate)
        est.update(0, 0, 1.0)
        assert np.isnan(est.estimate)

    def test_matches_plain_f_with_unit_weights(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=100)
        preds = rng.integers(0, 2, size=100)
        est = AISEstimator(alpha=0.5)
        for l, p in zip(labels, preds):
            est.update(int(l), int(p))
        assert est.estimate == pytest.approx(f_measure(labels, preds, alpha=0.5))

    def test_precision_recall_properties(self):
        est = AISEstimator()
        observations = [(1, 1), (1, 0), (0, 1), (1, 1)]
        for l, p in observations:
            est.update(l, p)
        labels = [o[0] for o in observations]
        preds = [o[1] for o in observations]
        assert est.precision == pytest.approx(f_measure(labels, preds, alpha=1.0))
        assert est.recall == pytest.approx(f_measure(labels, preds, alpha=0.0))

    def test_weight_scale_invariance(self):
        # Scaling every weight by a constant leaves the ratio unchanged.
        est1 = AISEstimator()
        est2 = AISEstimator()
        data = [(1, 1, 0.5), (0, 1, 2.0), (1, 0, 1.5)]
        for l, p, w in data:
            est1.update(l, p, w)
            est2.update(l, p, 10.0 * w)
        assert est1.estimate == pytest.approx(est2.estimate)

    def test_weighted_bias_correction(self):
        # Items sampled at double rate with half weight contribute the
        # same as unit-weight single draws.
        est_plain = AISEstimator()
        est_weighted = AISEstimator()
        for __ in range(4):
            est_plain.update(1, 1, 1.0)
        est_plain.update(0, 1, 1.0)
        for __ in range(8):
            est_weighted.update(1, 1, 0.5)
        est_weighted.update(0, 1, 1.0)
        assert est_weighted.estimate == pytest.approx(est_plain.estimate)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            AISEstimator().update(1, 1, -1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            AISEstimator(alpha=-0.1)

    def test_state_snapshot(self):
        est = AISEstimator()
        est.update(1, 1, 2.0)
        state = est.state()
        assert state["weighted_tp"] == pytest.approx(2.0)
        assert state["n_observations"] == 1

    def test_reset(self):
        est = AISEstimator()
        est.update(1, 1)
        est.reset()
        assert np.isnan(est.estimate)
        assert est.n_observations == 0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1), st.integers(0, 1), st.floats(0.01, 100.0)
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(0, 1),
    )
    def test_property_estimate_in_range(self, observations, alpha):
        est = AISEstimator(alpha=alpha)
        for label, pred, weight in observations:
            est.update(label, pred, weight)
        value = est.estimate
        assert np.isnan(value) or 0.0 <= value <= 1.0


class TestVectorisedHistory:
    def test_matches_online_estimator(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, size=50)
        preds = rng.integers(0, 2, size=50)
        weights = rng.random(50) + 0.1
        history = sample_f_measure_history(labels, preds, weights)

        est = AISEstimator()
        for t, (l, p, w) in enumerate(zip(labels, preds, weights)):
            est.update(int(l), int(p), float(w))
            if np.isnan(est.estimate):
                assert np.isnan(history[t])
            else:
                assert history[t] == pytest.approx(est.estimate)

    def test_nan_prefix(self):
        history = sample_f_measure_history([0, 0, 1], [0, 0, 1])
        assert np.isnan(history[0])
        assert np.isnan(history[1])
        assert history[2] == pytest.approx(1.0)

    def test_default_weights(self):
        history = sample_f_measure_history([1, 1], [1, 0])
        assert history[-1] == pytest.approx(f_measure([1, 1], [1, 0]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="share length"):
            sample_f_measure_history([1], [1, 0])
