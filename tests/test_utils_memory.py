"""Tests for the layered RSS-measurement utilities.

On the Linux CI/dev machines a backend always exists (psutil or
``/proc/self/statm``), so the happy paths assert real measurements; the
degraded paths are exercised by monkeypatching every backend away and
checking that everything reports None instead of raising — the
contract that lets the scale benchmark run on platforms it cannot
meter.
"""

import numpy as np
import pytest

from repro.utils import memory
from repro.utils.memory import (
    PeakRssTracker,
    current_rss_bytes,
    peak_rss_high_water_bytes,
    rss_supported,
)


class TestBackends:
    def test_current_rss_positive_here(self):
        rss = current_rss_bytes()
        assert rss is not None and rss > 1024 * 1024

    def test_high_water_at_least_current(self):
        high = peak_rss_high_water_bytes()
        rss = current_rss_bytes()
        assert high is not None
        assert high >= rss * 0.5  # same order; high-water can't be tiny

    def test_supported_here(self):
        assert rss_supported()

    def test_statm_fallback_without_psutil(self, monkeypatch):
        monkeypatch.setattr(memory, "psutil", None)
        rss = current_rss_bytes()
        assert rss is not None and rss > 1024 * 1024


class TestTracker:
    def test_tracks_an_allocation(self):
        baseline = current_rss_bytes()
        with PeakRssTracker(interval=0.001) as tracker:
            ballast = np.ones(8 * 1024 * 1024, dtype=np.float64)  # 64 MB
            ballast[::4096] += 1  # touch pages
        assert tracker.peak_bytes is not None
        assert tracker.peak_bytes >= baseline
        del ballast

    def test_reusable_and_resets_peak(self):
        tracker = PeakRssTracker(interval=0.001)
        with tracker:
            pass
        first = tracker.peak_bytes
        with tracker:
            pass
        assert first is not None and tracker.peak_bytes is not None

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="interval"):
            PeakRssTracker(interval=0)

    def test_peak_none_until_entered(self):
        assert PeakRssTracker().peak_bytes is None


class TestGracefulDegradation:
    @pytest.fixture
    def no_backends(self, monkeypatch, tmp_path):
        monkeypatch.setattr(memory, "psutil", None)
        monkeypatch.setattr(memory, "_STATM", tmp_path / "absent")
        return monkeypatch

    def test_current_rss_none(self, no_backends):
        assert current_rss_bytes() is None
        assert not rss_supported()

    def test_tracker_falls_back_to_high_water(self, no_backends):
        with PeakRssTracker(interval=0.001) as tracker:
            pass
        # getrusage still exists on this platform, so the tracker
        # degrades to the lifetime high-water mark rather than None.
        assert tracker.peak_bytes == peak_rss_high_water_bytes()

    def test_tracker_reports_none_with_nothing_at_all(
        self, no_backends, monkeypatch
    ):
        monkeypatch.setattr(memory, "resource", None)
        with PeakRssTracker(interval=0.001) as tracker:
            pass
        assert tracker.peak_bytes is None
