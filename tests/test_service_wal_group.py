"""Group-commit WAL: atomic batches, fsync accounting, prefix restores.

The group-commit contract is the heart of the sharded tier's
durability story: events buffer in memory, a flush makes the whole
buffer durable with one data fsync plus one directory fsync, and an
acknowledgement may only follow the flush.  These tests pin the three
consequences that matter:

* a crash between flushes loses the *entire* unflushed suffix and
  nothing else — no torn batches, no partially applied windows;
* every flushed prefix of the journal restores to a valid session
  state (the Hypothesis property below snapshots the directory after
  every flush and replays each copy);
* the directory fsync really runs after the shard rename — the
  regression the PR-4 journal was missing.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.faults import FaultingWAL, FaultPlan
from repro.service.session import EvaluationSession
from repro.service.wal import GroupCommitWAL, SessionWAL


def wal_events(directory):
    return SessionWAL(directory).events()


class TestGroupCommit:
    def test_appends_invisible_until_flush(self, tmp_path):
        wal = GroupCommitWAL(tmp_path / "s", max_batch=100)
        for ticket in range(1, 4):
            wal.append("propose", {"ticket": ticket, "batch_size": 2})
        assert wal.pending_events == 3
        assert wal_events(tmp_path / "s") == []
        wal.flush()
        assert wal.pending_events == 0
        assert [e["seq"] for e in wal_events(tmp_path / "s")] == [1, 2, 3]

    def test_flush_writes_one_batch_shard(self, tmp_path):
        wal = GroupCommitWAL(tmp_path / "s", max_batch=100)
        for ticket in range(1, 5):
            wal.append("propose", {"ticket": ticket, "batch_size": 1})
        wal.flush()
        names = sorted(p.name for p in (tmp_path / "s" / "events").iterdir())
        assert names == ["b00000001-00000004.json"]

    def test_single_event_flush_uses_event_shard(self, tmp_path):
        wal = GroupCommitWAL(tmp_path / "s", max_batch=100)
        wal.append("propose", {"ticket": 1, "batch_size": 1})
        wal.flush()
        names = sorted(p.name for p in (tmp_path / "s" / "events").iterdir())
        assert names == ["e00000001-propose.json"]

    def test_self_flush_at_max_batch(self, tmp_path):
        wal = GroupCommitWAL(tmp_path / "s", max_batch=3)
        for ticket in range(1, 4):
            wal.append("propose", {"ticket": ticket, "batch_size": 1})
        assert wal.pending_events == 0  # hit the bound, flushed itself
        assert len(wal_events(tmp_path / "s")) == 3

    def test_empty_flush_is_noop(self, tmp_path):
        wal = GroupCommitWAL(tmp_path / "s")
        assert wal.flush() == 0
        assert list((tmp_path / "s" / "events").iterdir()) == []

    def test_restart_resumes_sequence_numbers(self, tmp_path):
        wal = GroupCommitWAL(tmp_path / "s", max_batch=100)
        wal.append("propose", {"ticket": 1, "batch_size": 1})
        wal.append("ingest", {"ticket": 1, "labels": [1]})
        wal.flush()
        wal.append("propose", {"ticket": 2, "batch_size": 1})  # never flushed
        resumed = GroupCommitWAL(tmp_path / "s", max_batch=100)
        seq = resumed.append("propose", {"ticket": 2, "batch_size": 1})
        resumed.flush()
        assert seq == 3  # the lost buffered event's number is reused
        assert [e["seq"] for e in wal_events(tmp_path / "s")] == [1, 2, 3]

    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_codecs_replay_identically(self, tmp_path, codec):
        records = [
            ("propose", {"ticket": 1, "batch_size": 3}),
            ("ingest", {"ticket": 1, "labels": [0, 1, 1]}),
            ("checkpoint", {"ticket": 1, "state": {"x": 1.5}, "pending": None}),
        ]
        wal = GroupCommitWAL(tmp_path / codec, codec=codec, max_batch=100)
        for kind, payload in records:
            wal.append(kind, payload)
        wal.flush()
        assert wal_events(tmp_path / codec) == [
            {"seq": i + 1, "kind": kind, **payload}
            for i, (kind, payload) in enumerate(records)
        ]

    def test_mixed_codec_journal(self, tmp_path):
        first = GroupCommitWAL(tmp_path / "s", codec="json", max_batch=100)
        first.append("propose", {"ticket": 1, "batch_size": 1})
        first.flush()
        second = GroupCommitWAL(tmp_path / "s", codec="binary", max_batch=100)
        second.append("ingest", {"ticket": 1, "labels": [1]})
        second.flush()
        assert [e["kind"] for e in wal_events(tmp_path / "s")] == [
            "propose", "ingest"]


class TestDirectoryFsync:
    """The fix: a renamed shard is durable only after its directory syncs."""

    def test_dir_fsync_follows_rename(self, tmp_path, monkeypatch):
        import repro.service.wal as wal_module

        synced = []

        def recording_fsync(path):
            synced.append(path)

        monkeypatch.setattr(wal_module, "fsync_directory", recording_fsync)
        wal = SessionWAL(tmp_path / "s")
        wal.append("propose", {"ticket": 1, "batch_size": 1})
        # The shard file must already be at its final name when the
        # directory fsync runs — sync-before-rename would durably
        # record nothing.
        assert synced == [wal.event_dir]
        assert (wal.event_dir / "e00000001-propose.json").is_file()

    def test_one_dir_fsync_per_flush_window(self, tmp_path):
        plan = FaultPlan(None)  # no kill: pure stage counters
        wal = FaultingWAL(tmp_path / "s", plan=plan, max_batch=100)
        for ticket in range(1, 9):
            wal.append("propose", {"ticket": ticket, "batch_size": 1})
        wal.flush()
        assert plan.counts["wal:pre_fsync"] == 1
        assert plan.counts["wal:post_durable"] == 1
        wal.append("propose", {"ticket": 9, "batch_size": 1})
        wal.flush()
        assert plan.counts["wal:post_durable"] == 2

    def test_stage_order_per_flush(self, tmp_path):
        plan = FaultPlan(None)
        wal = FaultingWAL(tmp_path / "s", plan=plan, max_batch=100)
        wal.append("ingest", {"ticket": 1, "labels": [1]})
        wal.flush()
        for stage in ("pre_write", "pre_fsync", "pre_rename",
                      "post_rename", "post_durable"):
            assert plan.counts[f"wal:{stage}"] == 1

    def test_manifest_write_syncs_both_directories(self, tmp_path, monkeypatch):
        import repro.service.wal as wal_module
        import repro.utils.io as io_module

        synced = []
        monkeypatch.setattr(io_module, "fsync_directory",
                            lambda path: synced.append(path))
        monkeypatch.setattr(wal_module, "fsync_directory",
                            lambda path: synced.append(path))
        wal = SessionWAL(tmp_path / "root" / "s")
        wal.write_manifest({"session_id": "s"})
        # Durable name-and-all: the session directory (new manifest
        # entry) and the service root (new session directory entry).
        assert wal.directory in synced
        assert wal.directory.parent in synced


EVENT_STRATEGY = st.one_of(
    st.tuples(st.just("propose"),
              st.integers(min_value=1, max_value=64)),
    st.tuples(st.just("ingest"),
              st.lists(st.integers(min_value=0, max_value=1), max_size=4)),
    st.tuples(st.just("checkpoint"), st.just(None)),
)


@settings(max_examples=25, deadline=None)
@given(
    plan=st.lists(st.tuples(EVENT_STRATEGY, st.booleans()),
                  min_size=1, max_size=24),
    codec=st.sampled_from(["json", "binary"]),
)
def test_every_flushed_prefix_is_restorable(tmp_path_factory, plan, codec):
    """Property: a copy of the journal taken after any flush replays to
    exactly the events flushed by then — full batches, never a torn one.
    """
    root = tmp_path_factory.mktemp("gcwal")
    wal = GroupCommitWAL(root / "s", codec=codec, max_batch=100)
    flushed = []   # records durable so far
    buffered = []  # records appended since the last flush
    snapshots = []
    ticket = 0
    for index, ((kind, arg), do_flush) in enumerate(plan):
        if kind == "propose":
            ticket += 1
            payload = {"ticket": ticket, "batch_size": arg}
        elif kind == "ingest":
            payload = {"ticket": ticket, "labels": arg}
        else:
            payload = {"ticket": ticket, "state": {"i": index}, "pending": None}
        seq = wal.append(kind, payload)
        buffered.append({"seq": seq, "kind": kind, **payload})
        if do_flush:
            wal.flush()
            flushed.extend(buffered)
            buffered = []
            copy = root / f"snap-{index:03d}"
            shutil.copytree(root / "s", copy)
            snapshots.append((copy, list(flushed)))
    # Unflushed tail is invisible; every snapshot replays its own prefix.
    assert wal_events(root / "s") == flushed
    for copy, expected in snapshots:
        assert wal_events(copy) == expected


@settings(max_examples=10, deadline=None)
@given(flush_after=st.lists(st.booleans(), min_size=3, max_size=6),
       data=st.data())
def test_acked_session_rounds_survive_any_crash_point(
        tmp_path_factory, flush_after, data):
    """Property: restore equals the trajectory of *flushed* rounds.

    Drives a journalled session round by round, flushing (= acking)
    after a random subset of rounds; a directory copy taken at the end
    (any crash instant between flushes) must restore the state as of
    the last flush — every acked round present, every unacked one gone.
    """
    root = tmp_path_factory.mktemp("session")
    rng = np.random.default_rng(7)
    n = 50
    scores = rng.normal(size=n)
    predictions = (scores > 0).astype(np.int8)
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis", sampler_kwargs={"n_strata": 4},
        seed=3, directory=root / "s", session_id="s",
        wal_factory=lambda d: GroupCommitWAL(d, max_batch=1000),
    )
    acked_rounds = 0
    for do_flush in flush_after:
        proposal = session.propose(4)
        labels = [
            data.draw(st.integers(min_value=0, max_value=1))
            for _ in proposal["pending"]
        ]
        session.ingest(proposal["ticket"], labels)
        if do_flush:
            session.wal.flush()
            acked_rounds += 1
        else:
            break  # later rounds are all unacked; crash here
    copy = root / "restored"
    shutil.copytree(root / "s", copy)
    restored = EvaluationSession.restore(copy)
    status = restored.status()
    assert status["draws"] == 4 * acked_rounds
    assert status["outstanding"] is None
    if acked_rounds:
        # The acked prefix replays to a live, usable session.
        proposal = restored.propose(4)
        restored.ingest(proposal["ticket"], [0] * len(proposal["pending"]))
