"""Tests for pairwise feature extraction."""

import numpy as np
import pytest

from repro.pipeline import FieldSpec, PairFeatureExtractor, Record, RecordStore


@pytest.fixture
def stores():
    schema = ("name", "blurb", "price")
    store_a = RecordStore(schema, name="a")
    store_b = RecordStore(schema, name="b")
    rows_a = [
        ("acme rocket", "fast reliable rocket for travel", 100.0),
        ("zenith lamp", "warm light for the desk", 20.0),
    ]
    rows_b = [
        ("acme rocket x", "fast rocket travel kit", 95.0),
        ("polar fridge", "keeps things very cold", 450.0),
    ]
    for i, (name, blurb, price) in enumerate(rows_a):
        store_a.add(Record(i, i, {"name": name, "blurb": blurb, "price": price}))
    for i, (name, blurb, price) in enumerate(rows_b):
        store_b.add(Record(i, i, {"name": name, "blurb": blurb, "price": price}))
    return store_a, store_b


@pytest.fixture
def extractor():
    return PairFeatureExtractor(
        [
            FieldSpec("name", "short_text"),
            FieldSpec("blurb", "long_text"),
            FieldSpec("price", "numeric"),
        ]
    )


class TestFieldSpec:
    def test_valid_kinds(self):
        for kind in ("short_text", "long_text", "numeric"):
            assert FieldSpec("f", kind).kind == kind

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FieldSpec("f", "image")


class TestPairFeatureExtractor:
    def test_requires_specs(self):
        with pytest.raises(ValueError, match="at least one"):
            PairFeatureExtractor([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PairFeatureExtractor([FieldSpec("x"), FieldSpec("x", "numeric")])

    def test_transform_before_fit_raises(self, extractor):
        with pytest.raises(RuntimeError, match="fitted"):
            extractor.transform([[0, 0]])

    def test_shapes(self, stores, extractor):
        features = extractor.fit_transform(*stores, [[0, 0], [0, 1], [1, 1]])
        assert features.shape == (3, 3)

    def test_matching_pair_scores_higher(self, stores, extractor):
        features = extractor.fit_transform(*stores, [[0, 0], [0, 1]])
        # Pair (0,0) is the same rocket; (0,1) is rocket vs fridge.
        assert features[0, 0] > features[1, 0]  # name Jaccard
        assert features[0, 1] > features[1, 1]  # blurb tf-idf cosine
        assert features[0, 2] > features[1, 2]  # price similarity

    def test_feature_ranges(self, stores, extractor):
        features = extractor.fit_transform(*stores, [[i, j] for i in range(2) for j in range(2)])
        assert np.all(features >= 0.0)
        assert np.all(features <= 1.0)

    def test_feature_names(self, extractor):
        assert extractor.feature_names == [
            "name:short_text",
            "blurb:long_text",
            "price:numeric",
        ]

    def test_bad_pair_shape(self, stores, extractor):
        extractor.fit(*stores)
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            extractor.transform([0, 1])

    def test_empty_pairs_give_empty_feature_matrix(self, stores, extractor):
        extractor.fit(*stores)
        for empty in ([], np.empty((0,)), np.empty((0, 2), dtype=np.int64)):
            assert extractor.transform(empty).shape == (0, 3)
            assert extractor.transform_reference(empty).shape == (0, 3)

    def test_malformed_zero_size_shapes_still_rejected(self, stores, extractor):
        extractor.fit(*stores)
        for malformed in (np.empty((3, 0)), np.empty((0, 5)), np.empty((0, 2, 2))):
            with pytest.raises(ValueError, match=r"\(n, 2\)"):
                extractor.transform(malformed)

    def test_transform_matches_reference(self, stores, extractor):
        pairs = [[i, j] for i in range(2) for j in range(2)]
        extractor.fit(*stores)
        np.testing.assert_allclose(
            extractor.transform(pairs),
            extractor.transform_reference(pairs),
            rtol=0.0,
            atol=1e-12,
        )

    def test_chunk_size_does_not_change_results(self, stores, extractor):
        pairs = [[i, j] for i in range(2) for j in range(2)]
        extractor.fit(*stores)
        whole = extractor.transform(pairs)
        for chunk_size in (1, 2, 3, 100):
            np.testing.assert_array_equal(
                whole, extractor.transform(pairs, chunk_size=chunk_size)
            )

    def test_invalid_chunk_size(self, stores, extractor):
        with pytest.raises(ValueError, match="chunk_size"):
            PairFeatureExtractor([FieldSpec("name")], chunk_size=0)
        extractor.fit(*stores)
        with pytest.raises(ValueError, match="chunk_size"):
            extractor.transform([[0, 0]], chunk_size=0)

    def test_missing_values_yield_zero_similarity(self):
        schema = ("name",)
        store_a = RecordStore(schema)
        store_b = RecordStore(schema)
        store_a.add(Record(0, 0, {"name": None}))
        store_b.add(Record(0, 0, {"name": "something"}))
        extractor = PairFeatureExtractor([FieldSpec("name", "short_text")])
        features = extractor.fit_transform(store_a, store_b, [[0, 0]])
        assert features[0, 0] == pytest.approx(0.0)
