"""Fault injection: SIGKILL a live shard worker at every durability stage.

The sharded service's one guarantee is *acked events are never lost*:
an acknowledgement leaves the worker only after the group-commit flush
covering the event returned, so a ``kill -9`` at any instant may lose
un-acked work (the client retries) but never acknowledged work.  These
tests make that claim empirical: a :class:`FaultPlan` shipped in the
shard options SIGKILLs the worker at a named stage — mid-batch, before
the WAL fsync, between rename and directory sync, after durability but
before the ack, half-way through the ack frame itself — the supervisor
restarts it, and the client drives on to completion through the
documented recovery protocol (retry on 503; on 409, re-join the
outstanding proposal via ``status``).

The final assertion is the strong one: after any crash/recovery path
the completed trajectory is **bit-identical** to an uninterrupted
in-process session at the same seed, because every successful
propose/ingest sequence is deterministic and 409'd duplicates have no
side effects.

The harness (:class:`ShardedService`, :class:`RecoveringClient`) is
reused by the concurrency stress tests in
``test_service_stress.py``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.service.http import make_server
from repro.service.router import ShardRouter, ShardSupervisor, init_topology
from repro.service.session import EvaluationSession


# -- harness ---------------------------------------------------------------

class ShardedService:
    """A live sharded service over HTTP, with optional armed fault."""

    def __init__(self, root, shards: int = 1, *, fault: dict | None = None,
                 flush_interval: float = 0.0, max_batch: int = 32,
                 max_queue: int = 128, codec: str = "json"):
        init_topology(root, shards, codec)
        self.supervisor = ShardSupervisor(root, shards, options={
            "codec": codec,
            "flush_interval": flush_interval,
            "max_batch": max_batch,
            "max_queue": max_queue,
            "fault": fault,
        }).start()
        self.router = ShardRouter(self.supervisor)
        self.server = make_server(self.router, port=0)
        self.port = self.server.server_address[1]
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self._thread.start()

    def close(self):
        self.server.shutdown()
        self.router.close(graceful=True)
        self.server.server_close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class RecoveringClient:
    """An HTTP client speaking the documented retry/recovery protocol.

    * connection drops → reconnect and resend (requests are either
      idempotent or guarded by tickets);
    * 503 → honour ``Retry-After`` (capped) and resend;
    * 409 on propose → the proposal is already outstanding: re-join it
      through ``status()``;
    * 409 on ingest → the ticket was already consumed (the ack for a
      durable ingest was lost): confirm via ``status()`` and move on.

    Thread-safe through one keep-alive connection per calling thread.
    """

    def __init__(self, port: int, deadline: float = 120.0):
        self.port = port
        self.deadline = deadline
        self._local = threading.local()

    def _conn(self, fresh: bool = False) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if fresh and conn is not None:
            conn.close()
            conn = None
        if conn is None:
            conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                              timeout=30.0)
            conn.connect()
            conn.sock.setsockopt(6, 1, 1)  # TCP_NODELAY
            self._local.conn = conn
        return conn

    def request(self, method: str, path: str, body: dict | None = None):
        """Resend until a non-503 response arrives; returns (status, payload,
        headers)."""
        data = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if data else {}
        stop_at = time.monotonic() + self.deadline
        fresh = False
        while True:
            assert time.monotonic() < stop_at, \
                f"no non-503 answer to {method} {path} within deadline"
            try:
                conn = self._conn(fresh=fresh)
                conn.request(method, path, data, headers)
                response = conn.getresponse()
                payload = json.loads(response.read() or b"{}")
            except (http.client.HTTPException, OSError):
                fresh = True
                time.sleep(0.05)
                continue
            fresh = False
            if response.status in (503, 504):
                # 503: not executed, resend freely.  504: the answer is
                # late — resending is safe *for this client* because its
                # propose/ingest recovery paths absorb duplicates.
                retry_after = float(response.headers.get("Retry-After", 0.1))
                time.sleep(min(max(retry_after, 0.02), 0.5))
                continue
            return response.status, payload, dict(response.headers)

    # -- protocol helpers --

    def create(self, sid: str, predictions, scores, *, seed: int = 0,
               **kwargs) -> dict:
        status, payload, _ = self.request("POST", "/sessions", {
            "predictions": predictions, "scores": scores,
            "sampler": "oasis", "seed": seed, "session_id": sid, **kwargs,
        })
        assert status == 200, (status, payload)
        return payload

    def status(self, sid: str) -> dict:
        status, payload, _ = self.request("GET", f"/sessions/{sid}")
        assert status == 200, (status, payload)
        return payload

    def propose_with_recovery(self, sid: str, batch_size: int):
        """Returns (ticket, pending) whether or not crashes intervene."""
        while True:
            status, payload, _ = self.request(
                "POST", f"/sessions/{sid}/propose",
                {"batch_size": batch_size})
            if status == 200:
                return payload["ticket"], payload["pending"]
            assert status == 409, (status, payload)
            outstanding = self.status(sid)["outstanding"]
            if outstanding is not None:
                return outstanding["ticket"], outstanding["pending"]
            # The conflicting proposal was ingested between our two
            # calls (another thread); just propose again.

    def ingest_with_recovery(self, sid: str, ticket: int, labels) -> None:
        while True:
            status, payload, _ = self.request(
                "POST", f"/sessions/{sid}/ingest",
                {"ticket": ticket, "labels": labels})
            if status == 200:
                return
            assert status == 409, (status, payload)
            outstanding = self.status(sid)["outstanding"]
            if outstanding is None or outstanding["ticket"] != ticket:
                return  # the ingest committed; only its ack was lost

    def run_round(self, sid: str, batch_size: int, true_labels) -> None:
        ticket, pending = self.propose_with_recovery(sid, batch_size)
        labels = [int(true_labels[i]) for i in pending]
        self.ingest_with_recovery(sid, ticket, labels)


def make_pool(seed: int = 7, n: int = 120):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.3).astype(np.int8)
    scores = rng.normal(size=n) + 1.5 * labels
    predictions = (scores > 0.5).astype(np.int8)
    return predictions.tolist(), scores.tolist(), labels


def reference_status(predictions, scores, true_labels, *, seed: int,
                     rounds: int, batch_size: int) -> dict:
    """The uninterrupted in-process trajectory the service must match."""
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis", seed=seed)
    for _ in range(rounds):
        proposal = session.propose(batch_size)
        labels = [int(true_labels[i]) for i in proposal["pending"]]
        session.ingest(proposal["ticket"], labels)
    return session.status()


# -- the kill matrix -------------------------------------------------------

ROUNDS = 6
BATCH = 8
SEED = 5

STAGES = [
    # (stage, after): kill on the after-th crossing of the stage.  All
    # land mid-drive; which recovery path the client needs depends on
    # whether the killed window had reached durability.
    ("wal:pre_fsync", 3),       # shard written, not fsynced → lost
    ("wal:pre_rename", 3),      # fsynced, no final name → lost
    ("wal:post_rename", 3),     # named, directory not synced
    ("wal:post_durable", 3),    # fully durable, ack never sent
    ("batch:pre_ack", 4),       # every flush done, replies pending
    ("sock:torn_ack", 3),       # ack frame torn half-way on the wire
]


@pytest.mark.parametrize("stage,after", STAGES, ids=[s for s, _ in STAGES])
def test_kill_at_stage_preserves_acked_trajectory(tmp_path, stage, after):
    predictions, scores, true_labels = make_pool()
    with ShardedService(tmp_path / "root", shards=1,
                        fault={"stage": stage, "after": after}) as service:
        client = RecoveringClient(service.port)
        client.create("s0", predictions, scores, seed=SEED)
        for _ in range(ROUNDS):
            client.run_round("s0", BATCH, true_labels)
        final = client.status("s0")
        # The worker really died at the armed stage, exactly once.
        assert service.supervisor.restarts == [1]
    reference = reference_status(
        predictions, scores, true_labels,
        seed=SEED, rounds=ROUNDS, batch_size=BATCH)
    assert final["estimate"] == reference["estimate"]  # bit-identical
    assert final["draws"] == reference["draws"]
    assert final["labels_consumed"] == reference["labels_consumed"]
    assert final["outstanding"] is None


def test_kill_mid_batch_loses_only_unacked_requests(tmp_path):
    """``batch:mid`` needs a commit window holding two requests, so two
    threads drive two sessions into the same flush window; the kill
    lands between executing them — neither was acked, both clients
    retry, both trajectories complete bit-identically.
    """
    predictions, scores, true_labels = make_pool(seed=11)
    with ShardedService(tmp_path / "root", shards=1,
                        flush_interval=0.2,
                        fault={"stage": "batch:mid", "after": 2}) as service:
        clients = [RecoveringClient(service.port) for _ in range(2)]
        sids = ["a0", "a1"]
        for client, sid, seed in zip(clients, sids, (1, 2)):
            client.create(sid, predictions, scores, seed=seed)
        errors = []

        def drive(client, sid):
            try:
                for _ in range(4):
                    client.run_round(sid, 6, true_labels)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((sid, exc))

        threads = [threading.Thread(target=drive, args=(c, s))
                   for c, s in zip(clients, sids)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors
        assert service.supervisor.restarts == [1]
        finals = {sid: clients[0].status(sid) for sid in sids}
    for sid, seed in zip(sids, (1, 2)):
        reference = reference_status(
            predictions, scores, true_labels,
            seed=seed, rounds=4, batch_size=6)
        assert finals[sid]["estimate"] == reference["estimate"]
        assert finals[sid]["draws"] == reference["draws"]


def test_sigterm_drains_and_restart_resumes(tmp_path):
    """Graceful shutdown: SIGTERM checkpoints every resident session;
    a whole new service over the same root resumes each one exactly.
    """
    predictions, scores, true_labels = make_pool(seed=3)
    root = tmp_path / "root"
    with ShardedService(root, shards=2) as service:
        client = RecoveringClient(service.port)
        for index in range(3):
            client.create(f"s{index}", predictions, scores, seed=index)
            for _ in range(2):
                client.run_round(f"s{index}", 5, true_labels)
        before = {f"s{index}": client.status(f"s{index}")
                  for index in range(3)}
        # close() drains via SIGTERM: workers finish their queues,
        # checkpoint every resident session, exit 0.
    with ShardedService(root, shards=2) as service:
        client = RecoveringClient(service.port)
        for sid, expected in before.items():
            restored = client.status(sid)
            assert restored["estimate"] == expected["estimate"]
            assert restored["draws"] == expected["draws"]
            # ...and each keeps serving.
            client.run_round(sid, 5, true_labels)


def test_shard_count_is_pinned_across_restarts(tmp_path):
    root = tmp_path / "root"
    with ShardedService(root, shards=2):
        pass
    with pytest.raises(ValueError, match="laid out for 2 shard"):
        ShardedService(root, shards=4)


# -- disk-full degradation and keyed-retry recovery ------------------------
#
# These drive the service through repro.service.client.EvaluationClient —
# the retrying, idempotency-keyed library the failure envelope is designed
# for — instead of the hand-rolled RecoveringClient above, which predates
# idempotency keys and recovers through the ticket/status protocol.

import os as _os
import signal as _signal

from repro.service.client import EvaluationClient, ServiceRequestError


def _await_restart(service, counts, timeout: float = 30.0) -> None:
    stop_at = time.monotonic() + timeout
    while service.supervisor.restarts != counts:
        assert time.monotonic() < stop_at, \
            f"restarts stuck at {service.supervisor.restarts}"
        time.sleep(0.05)
    # ...and the respawned worker is answering.
    while True:
        assert time.monotonic() < stop_at, "restarted worker never answered"
        try:
            if all(s.get("status") == "ok"
                   for s in service.supervisor.shard_stats()):
                return
        except Exception:
            pass
        time.sleep(0.05)


def test_enospc_degrades_to_read_only_until_restart(tmp_path):
    """A journal volume that fills mid-run must *degrade*, not damage:
    the un-flushable request rolls back (503), the shard pins itself
    read-only so no later mutation can diverge memory from disk, reads
    keep serving, and a worker restart over the (space-recovered)
    volume resumes the exact acknowledged trajectory.
    """
    predictions, scores, true_labels = make_pool(seed=13)
    with ShardedService(tmp_path / "root", shards=1,
                        fault={"stage": "wal:pre_write", "mode": "enospc",
                               "after": 5}) as service:
        client = EvaluationClient(
            f"http://127.0.0.1:{service.port}",
            max_retries=4, backoff=0.02, backoff_cap=0.1, seed=1)
        client.create_session(predictions, scores, sampler="oasis",
                              seed=SEED, session_id="e0")
        failed_round = None
        for index in range(ROUNDS):
            try:
                proposal = client.propose(
                    "e0", BATCH, idempotency_key=f"p{index}", deadline=3.0)
                client.ingest(
                    "e0", proposal["ticket"],
                    [int(true_labels[i]) for i in proposal["pending"]],
                    idempotency_key=f"i{index}", deadline=3.0)
            except ServiceRequestError as exc:
                assert exc.status == 503, exc.status
                failed_round = index
                break
        assert failed_round is not None, "the injected ENOSPC never fired"

        # Degraded, not dead: mutations refuse with 503, health names
        # the read-only shard, reads still serve the durable state.
        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["read_only_shards"] == 1
        assert "draws" in client.status("e0")
        with pytest.raises(ServiceRequestError) as excinfo:
            client.propose("e0", BATCH, idempotency_key="doomed",
                           deadline=1.0)
        assert excinfo.value.status == 503
        assert "read-only" in str(excinfo.value)

        # The operator clears space and bounces the worker (the respawn
        # does not re-arm the fault — the volume has room again).
        _os.kill(service.supervisor.worker_pids()[0], _signal.SIGKILL)
        _await_restart(service, [1])

        # Re-drive from the failed round with the *same* keys: whatever
        # half-state the failure left is absorbed by the dedup window,
        # and nothing is double-applied.
        for index in range(failed_round, ROUNDS):
            proposal = client.propose(
                "e0", BATCH, idempotency_key=f"p{index}")
            client.ingest(
                "e0", proposal["ticket"],
                [int(true_labels[i]) for i in proposal["pending"]],
                idempotency_key=f"i{index}")
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["read_only_shards"] == 0
        final = client.status("e0")
    reference = reference_status(
        predictions, scores, true_labels,
        seed=SEED, rounds=ROUNDS, batch_size=BATCH)
    assert final["estimate"] == reference["estimate"]
    assert final["draws"] == reference["draws"]
    assert final["labels_consumed"] == reference["labels_consumed"]


def test_dropped_ack_keyed_retry_does_not_double_count(tmp_path):
    """The lying-503 case: the worker commits an ingest but its ack
    evaporates on the wire (connection closed before a byte of the
    reply).  The router can only render that teardown as a 503 —
    *"not executed, resend freely"* — which is false here.  An unkeyed
    resend would be a 409 at best and a double-count at worst; the
    EvaluationClient's idempotency key makes the resend replay the
    original response instead.  The worker never dies.
    """
    predictions, scores, true_labels = make_pool(seed=17)
    with ShardedService(tmp_path / "root", shards=1,
                        fault={"stage": "sock:drop_ack",
                               "after": 3}) as service:
        client = EvaluationClient(
            f"http://127.0.0.1:{service.port}",
            backoff=0.02, backoff_cap=0.2, seed=2)
        client.create_session(predictions, scores, sampler="oasis",
                              seed=SEED, session_id="d0")
        for index in range(ROUNDS):
            # Ack #3 — round 1's ingest — is the one that evaporates.
            proposal = client.propose("d0", BATCH)
            response = client.ingest(
                "d0", proposal["ticket"],
                [int(true_labels[i]) for i in proposal["pending"]])
            assert response["outstanding"] is None
        final = client.status("d0")
        assert service.supervisor.restarts == [0]  # nobody crashed
    reference = reference_status(
        predictions, scores, true_labels,
        seed=SEED, rounds=ROUNDS, batch_size=BATCH)
    assert final["estimate"] == reference["estimate"]
    assert final["draws"] == reference["draws"]
    assert final["labels_consumed"] == reference["labels_consumed"]


def test_kill_between_commit_and_ack_keyed_retry_replays(tmp_path):
    """Regression for the committed-but-unacked window: the worker is
    SIGKILLed after the flush covering an ingest but before its reply
    (``batch:pre_ack``).  The restarted worker replays the journal —
    including the ingest's idempotency key — so the client's retry of
    that exact request replays the original response off the rebuilt
    dedup window rather than double-counting the labels.
    """
    predictions, scores, true_labels = make_pool(seed=19)
    with ShardedService(tmp_path / "root", shards=1,
                        fault={"stage": "batch:pre_ack",
                               "after": 3}) as service:
        client = EvaluationClient(
            f"http://127.0.0.1:{service.port}",
            backoff=0.02, backoff_cap=0.2, seed=3)
        client.create_session(predictions, scores, sampler="oasis",
                              seed=SEED, session_id="k0")
        # Commit window #3 is round 1's ingest: committed, never acked,
        # worker dead.  The client's keyed retry rides through the 503
        # teardown and the restart window inside this one call.
        proposal = client.propose("k0", BATCH)
        response = client.ingest(
            "k0", proposal["ticket"],
            [int(true_labels[i]) for i in proposal["pending"]])
        one_round = reference_status(
            predictions, scores, true_labels,
            seed=SEED, rounds=1, batch_size=BATCH)
        assert response["labels_consumed"] == one_round["labels_consumed"]
        assert response["draws"] == one_round["draws"]
        assert service.supervisor.restarts == [1]
        for _ in range(1, ROUNDS):
            proposal = client.propose("k0", BATCH)
            client.ingest(
                "k0", proposal["ticket"],
                [int(true_labels[i]) for i in proposal["pending"]])
        final = client.status("k0")
    reference = reference_status(
        predictions, scores, true_labels,
        seed=SEED, rounds=ROUNDS, batch_size=BATCH)
    assert final["estimate"] == reference["estimate"]
    assert final["draws"] == reference["draws"]
    assert final["labels_consumed"] == reference["labels_consumed"]
