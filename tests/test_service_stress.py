"""Concurrency stress: many threads, many sessions, few shards.

Sessions are the unit of consistency, so the stress invariant is
per-session determinism under contention: however many threads race a
session, the sequence of *successful* propose/ingest rounds is the one
trajectory its seed implies — conflicting proposes 409 before any side
effect, duplicate ingests 409 on a stale ticket, and backpressure 503s
(forced here with a tiny per-shard queue) always succeed on retry.
The final state of every session must therefore equal an uninterrupted
single-threaded reference — any cross-session bleed or lost/doubled
round would break the bit-identity.
"""

from __future__ import annotations

import threading

import pytest

from test_service_faults import (
    RecoveringClient,
    ShardedService,
    make_pool,
    reference_status,
)

THREADS = 8
SESSIONS = 6
SHARDS = 2
ROUNDS = 4
BATCH = 6


def test_thread_storm_preserves_per_session_determinism(tmp_path):
    predictions, scores, true_labels = make_pool(seed=21, n=150)
    with ShardedService(tmp_path / "root", shards=SHARDS,
                        flush_interval=0.01, max_queue=4) as service:
        setup = RecoveringClient(service.port)
        sids = [f"s{index}" for index in range(SESSIONS)]
        for index, sid in enumerate(sids):
            setup.create(sid, predictions, scores, seed=index)

        # A thread that loses a propose race *joins* the winner's
        # outstanding ticket, so client-side round counting overcounts;
        # the server's own committed-draw count is the only truth about
        # how many rounds really landed.
        finished = {sid: False for sid in sids}
        finished_lock = threading.Lock()
        errors = []

        def worker(worker_index: int):
            client = RecoveringClient(service.port)
            try:
                while True:
                    with finished_lock:
                        remaining = [s for s in sids if not finished[s]]
                    if not remaining:
                        return
                    # Spread threads across sessions but guarantee
                    # overlap: several threads share each session.
                    sid = remaining[worker_index % len(remaining)]
                    if client.status(sid)["draws"] >= ROUNDS * BATCH:
                        with finished_lock:
                            finished[sid] = True
                        continue
                    client.run_round(sid, BATCH, true_labels)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((worker_index, exc))

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        assert not any(thread.is_alive() for thread in threads)

        # Every 503 the tiny queue forced was retried to success; the
        # shard counters prove the service stayed up through them.
        stats = service.supervisor.shard_stats()
        assert all(shard["status"] == "ok" for shard in stats)
        assert sum(shard["requests"] for shard in stats) \
            >= SESSIONS * (1 + 2 * ROUNDS)

        finals = {sid: setup.status(sid) for sid in sids}
        assert service.supervisor.restarts == [0] * SHARDS  # no crashes

    # Sessions may have overshot ROUNDS when two threads raced the
    # same last round; whatever really landed, the state must be the
    # single-threaded trajectory of exactly that many rounds.
    for index, sid in enumerate(sids):
        done = finals[sid]["draws"] // BATCH
        assert done >= ROUNDS
        assert finals[sid]["draws"] == done * BATCH
        reference = reference_status(
            predictions, scores, true_labels,
            seed=index, rounds=done, batch_size=BATCH)
        assert finals[sid]["estimate"] == reference["estimate"]
        assert finals[sid]["labels_consumed"] == reference["labels_consumed"]
        assert finals[sid]["outstanding"] is None


def test_double_propose_and_double_ingest_conflict(tmp_path):
    """The 409 contract, end to end through router and shard."""
    predictions, scores, true_labels = make_pool(seed=2, n=80)
    with ShardedService(tmp_path / "root", shards=1) as service:
        client = RecoveringClient(service.port)
        client.create("s0", predictions, scores)
        status, first, _ = client.request(
            "POST", "/sessions/s0/propose", {"batch_size": 4})
        assert status == 200
        status, payload, _ = client.request(
            "POST", "/sessions/s0/propose", {"batch_size": 4})
        assert status == 409 and "outstanding" in payload["error"]
        labels = [int(true_labels[i]) for i in first["pending"]]
        status, _, _ = client.request(
            "POST", "/sessions/s0/ingest",
            {"ticket": first["ticket"], "labels": labels})
        assert status == 200
        status, payload, _ = client.request(
            "POST", "/sessions/s0/ingest",
            {"ticket": first["ticket"], "labels": labels})
        assert status == 409  # stale ticket: the batch already committed


def test_backpressure_reports_retry_after(tmp_path):
    """A draining shard answers 503 with a Retry-After hint, never hangs."""
    predictions, scores, _ = make_pool(seed=4, n=60)
    with ShardedService(tmp_path / "root", shards=1) as service:
        client = RecoveringClient(service.port)
        client.create("s0", predictions, scores)
        # Put the worker into drain (the SIGTERM path) via its RPC.
        status, payload, _ = service.supervisor.clients[0].request("drain")
        assert status == 200 and payload["draining"] is True
        conn_status, payload, headers = _raw_request(
            service.port, "POST", "/sessions/s0/propose", {"batch_size": 2})
        assert conn_status == 503
        assert float(headers["Retry-After"]) > 0
        assert "drain" in payload["error"]


def _raw_request(port, method, path, body):
    import http.client
    import json

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        conn.request(method, path, json.dumps(body).encode(),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return (response.status, json.loads(response.read() or b"{}"),
                dict(response.headers))
    finally:
        conn.close()
