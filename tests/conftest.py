"""Shared fixtures: small pools and benchmark caches.

Expensive fixtures (benchmark pools) are session-scoped so the whole
suite builds each one once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_benchmark


@pytest.fixture(scope="session")
def tiny_abt_buy():
    """The tiny Abt-Buy pool used across sampler tests."""
    return load_benchmark("abt_buy", scale="tiny", random_state=42)


@pytest.fixture(scope="session")
def tiny_cora():
    """The tiny cora (dedup) pool: mild imbalance regime."""
    return load_benchmark("cora", scale="tiny", random_state=42)


@pytest.fixture(scope="session")
def tiny_tweets():
    """The tiny balanced (non-ER) pool."""
    return load_benchmark("tweets100k", scale="tiny", random_state=42)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def imbalanced_pool(rng):
    """A synthetic score pool with heavy imbalance, no pipeline needed.

    Returns dict with scores, predictions, true_labels where scores are
    informative of the labels (high score => more likely match).
    """
    n = 5000
    n_matches = 40
    labels = np.zeros(n, dtype=np.int8)
    match_idx = rng.choice(n, size=n_matches, replace=False)
    labels[match_idx] = 1
    # Scores: noisy logits correlated with the labels.
    scores = rng.normal(loc=-2.0, scale=1.0, size=n)
    scores[match_idx] = rng.normal(loc=2.0, scale=1.0, size=n_matches)
    predictions = (scores > 0).astype(np.int8)
    return {"scores": scores, "predictions": predictions, "true_labels": labels}
