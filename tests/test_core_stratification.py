"""Tests for CSF / equal-size stratification (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import Strata, csf_stratify, equal_size_stratify, stratify

score_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(1, 300),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestStrataContainer:
    def test_basic_stats(self):
        strata = Strata([0, 0, 1, 1, 1], [0.1, 0.2, 0.7, 0.8, 0.9])
        assert strata.n_strata == 2
        np.testing.assert_array_equal(strata.sizes, [2, 3])
        np.testing.assert_allclose(strata.weights, [0.4, 0.6])

    def test_mean_scores(self):
        strata = Strata([0, 0, 1], [0.2, 0.4, 1.0])
        np.testing.assert_allclose(strata.mean_scores(), [0.3, 1.0])

    def test_stratum_means_arbitrary_values(self):
        strata = Strata([0, 1, 1], [0.0, 1.0, 1.0])
        np.testing.assert_allclose(strata.stratum_means([1.0, 0.0, 1.0]), [1.0, 0.5])

    def test_members_partition_pool(self):
        strata = Strata([1, 0, 1, 0], [0.9, 0.1, 0.8, 0.2])
        all_members = np.concatenate([strata.members(k) for k in range(2)])
        assert sorted(all_members.tolist()) == [0, 1, 2, 3]

    def test_members_in_right_stratum(self):
        allocations = [1, 0, 1, 0, 1]
        strata = Strata(allocations, np.arange(5, dtype=float))
        for k in range(2):
            for idx in strata.members(k):
                assert allocations[idx] == k

    def test_sample_in_stratum(self):
        strata = Strata([0, 0, 1], [0.0, 0.1, 0.9])
        rng = np.random.default_rng(0)
        draws = {strata.sample_in_stratum(1, rng) for __ in range(10)}
        assert draws == {2}

    def test_rejects_gap_in_indices(self):
        with pytest.raises(ValueError, match="contiguous"):
            Strata([0, 2], [0.0, 1.0])

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="empty"):
            Strata(np.array([], dtype=int), np.array([]))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError, match="align"):
            Strata([0, 0], [1.0])


class TestCSFStratify:
    def test_respects_requested_maximum(self):
        scores = np.random.default_rng(0).normal(size=1000)
        strata = csf_stratify(scores, 30)
        assert strata.n_strata <= 30

    def test_identical_scores_single_stratum(self):
        strata = csf_stratify(np.full(50, 0.5), 10)
        assert strata.n_strata == 1

    def test_strata_ordered_by_score(self):
        scores = np.random.default_rng(1).normal(size=500)
        strata = csf_stratify(scores, 20)
        means = strata.mean_scores()
        assert np.all(np.diff(means) > 0)

    def test_heavy_tail_gives_unequal_sizes(self):
        # ER-like score distribution: mass at low scores, thin tail of
        # high ones -> strata sizes span orders of magnitude (Fig. 1).
        rng = np.random.default_rng(2)
        scores = np.concatenate([rng.beta(1, 20, size=5000), rng.beta(20, 1, size=50)])
        strata = csf_stratify(scores, 30)
        assert strata.sizes.max() / strata.sizes.min() > 10

    def test_single_item(self):
        strata = csf_stratify(np.array([0.3]), 5)
        assert strata.n_strata == 1
        assert strata.n_items == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            csf_stratify(np.array([]), 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            csf_stratify(np.array([1.0, 2.0]), 0)

    @settings(max_examples=50, deadline=None)
    @given(score_arrays, st.integers(1, 40))
    def test_property_valid_partition(self, scores, k):
        strata = csf_stratify(scores, k)
        # Partition: every item allocated, indices contiguous from 0.
        assert strata.n_items == len(scores)
        assert strata.sizes.sum() == len(scores)
        assert strata.n_strata <= max(k, 1)
        assert np.all(strata.sizes > 0)

    @settings(max_examples=50, deadline=None)
    @given(score_arrays, st.integers(1, 40))
    def test_property_score_monotone_allocation(self, scores, k):
        strata = csf_stratify(scores, k)
        # Higher score can never land in a lower stratum.
        order = np.argsort(scores, kind="stable")
        allocations = strata.allocations[order]
        assert np.all(np.diff(allocations) >= 0)


class TestEqualSizeStratify:
    def test_sizes_nearly_equal(self):
        scores = np.random.default_rng(0).normal(size=1000)
        strata = equal_size_stratify(scores, 10)
        assert strata.sizes.max() - strata.sizes.min() <= 1

    def test_k_capped_by_pool(self):
        strata = equal_size_stratify(np.array([1.0, 2.0, 3.0]), 10)
        assert strata.n_strata <= 3

    def test_ordered_by_score(self):
        scores = np.random.default_rng(0).normal(size=200)
        strata = equal_size_stratify(scores, 8)
        means = strata.mean_scores()
        assert np.all(np.diff(means) > 0)


class TestDispatch:
    def test_csf(self):
        scores = np.random.default_rng(0).random(100)
        assert stratify(scores, 5, "csf").n_strata <= 5

    def test_equal_size(self):
        scores = np.random.default_rng(0).random(100)
        strata = stratify(scores, 5, "equal_size")
        assert strata.sizes.max() - strata.sizes.min() <= 1

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown stratification"):
            stratify(np.array([1.0]), 2, "quantum")
