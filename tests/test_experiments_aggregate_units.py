"""Direct unit tests for trajectory aggregation (no sampling involved)."""

import numpy as np
import pytest

from repro.experiments.aggregate import aggregate_trajectories
from repro.experiments.runner import TrialResult


def make_result(estimates, true_value=0.5, budgets=None):
    estimates = np.asarray(estimates, dtype=float)
    if budgets is None:
        budgets = np.arange(1, estimates.shape[1] + 1) * 10
    return TrialResult(
        name="test",
        budgets=np.asarray(budgets),
        estimates=estimates,
        true_value=true_value,
    )


class TestAggregation:
    def test_exact_abs_error(self):
        result = make_result([[0.6, 0.55], [0.4, 0.45]], true_value=0.5)
        stats = aggregate_trajectories(result, min_defined=0.0)
        np.testing.assert_allclose(stats.abs_error, [0.1, 0.05])

    def test_bias_signed(self):
        result = make_result([[0.6, 0.6], [0.7, 0.7]], true_value=0.5)
        stats = aggregate_trajectories(result, min_defined=0.0)
        np.testing.assert_allclose(stats.bias, [0.15, 0.15])

    def test_std_dev(self):
        result = make_result([[0.4, 0.4], [0.6, 0.6]], true_value=0.5)
        stats = aggregate_trajectories(result, min_defined=0.0)
        np.testing.assert_allclose(stats.std_dev, [0.1, 0.1])

    def test_defined_fraction(self):
        result = make_result([[np.nan, 0.5], [0.5, 0.5], [np.nan, 0.5], [0.5, 0.5]])
        stats = aggregate_trajectories(result, min_defined=0.0)
        np.testing.assert_allclose(stats.defined_fraction, [0.5, 1.0])

    def test_95_percent_rule_masks_column(self):
        estimates = np.full((10, 2), 0.5)
        estimates[0, 0] = np.nan  # 90% defined at first budget
        stats = aggregate_trajectories(make_result(estimates))
        assert np.isnan(stats.abs_error[0])
        assert not np.isnan(stats.abs_error[1])

    def test_all_nan_column(self):
        result = make_result([[np.nan, 0.5], [np.nan, 0.6]])
        stats = aggregate_trajectories(result, min_defined=0.0)
        assert np.isnan(stats.abs_error[0])

    def test_final_abs_error_skips_trailing_nan(self):
        estimates = np.full((10, 3), 0.6)
        estimates[:, 2] = np.nan
        stats = aggregate_trajectories(make_result(estimates, true_value=0.5))
        assert stats.final_abs_error() == pytest.approx(0.1)

    def test_final_abs_error_all_undefined(self):
        stats = aggregate_trajectories(make_result(np.full((4, 2), np.nan)))
        assert np.isnan(stats.final_abs_error())

    def test_labels_to_reach_first_crossing(self):
        estimates = np.array([[0.9, 0.6, 0.52, 0.51]] * 10)
        stats = aggregate_trajectories(
            make_result(estimates, true_value=0.5, budgets=[10, 20, 30, 40])
        )
        assert stats.labels_to_reach(0.05) == 30.0

    def test_labels_to_reach_never(self):
        estimates = np.full((5, 2), 0.9)
        stats = aggregate_trajectories(make_result(estimates, true_value=0.5))
        assert np.isnan(stats.labels_to_reach(0.01))

    def test_labels_to_reach_ignores_undefined_prefix(self):
        estimates = np.column_stack(
            [np.full(10, np.nan), np.full(10, 0.5)]
        )
        stats = aggregate_trajectories(
            make_result(estimates, true_value=0.5, budgets=[10, 20])
        )
        assert stats.labels_to_reach(0.01) == 20.0
