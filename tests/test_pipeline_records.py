"""Tests for record stores, pair spaces and the match relation."""

import numpy as np
import pytest

from repro.pipeline import (
    MatchRelation,
    PairSpaceError,
    Record,
    RecordStore,
    build_pair_pool,
    cross_product_pairs,
    dedup_pairs,
    iter_cross_product_pairs,
    iter_dedup_pairs,
    sample_pair_pool,
)


def make_store(entity_ids, name="db"):
    store = RecordStore(("f",), name=name)
    for i, eid in enumerate(entity_ids):
        store.add(Record(record_id=i, entity_id=eid, fields={"f": str(eid)}))
    return store


class TestRecordStore:
    def test_add_and_len(self):
        store = make_store([1, 2, 3])
        assert len(store) == 3

    def test_schema_violation_raises(self):
        store = RecordStore(("a",))
        with pytest.raises(ValueError, match="outside schema"):
            store.add(Record(0, 0, {"b": 1}))

    def test_field_values_order(self):
        store = make_store([5, 7])
        assert store.field_values("f") == ["5", "7"]

    def test_field_values_unknown_field(self):
        store = make_store([1])
        with pytest.raises(KeyError, match="unknown field"):
            store.field_values("nope")

    def test_missing_field_is_none(self):
        store = RecordStore(("a", "b"))
        store.add(Record(0, 0, {"a": 1}))
        assert store.field_values("b") == [None]

    def test_entity_ids(self):
        store = make_store([4, 4, 9])
        np.testing.assert_array_equal(store.entity_ids(), [4, 4, 9])

    def test_record_getitem(self):
        record = Record(0, 1, {"x": "v"})
        assert record["x"] == "v"
        assert record.get("missing", "d") == "d"


class TestPairSpaces:
    def test_cross_product_shape(self):
        pairs = cross_product_pairs(3, 4)
        assert pairs.shape == (12, 2)

    def test_cross_product_coverage(self):
        pairs = cross_product_pairs(2, 2)
        assert {tuple(p) for p in pairs} == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_dedup_pairs_count(self):
        pairs = dedup_pairs(5)
        assert len(pairs) == 10  # C(5, 2)

    def test_dedup_pairs_strictly_upper(self):
        pairs = dedup_pairs(6)
        assert np.all(pairs[:, 0] < pairs[:, 1])


class TestMatchRelation:
    def test_from_entity_ids(self):
        store_a = make_store([1, 2])
        store_b = make_store([2, 3])
        pairs = cross_product_pairs(2, 2)
        relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)
        # Only (record 1 of A, record 0 of B) shares entity 2.
        assert relation.n_matches == 1
        match_row = relation.pairs[relation.labels == 1][0]
        assert tuple(match_row) == (1, 0)

    def test_imbalance_ratio(self):
        relation = MatchRelation([[0, 0], [0, 1], [1, 0], [1, 1]], [1, 0, 0, 0])
        assert relation.imbalance_ratio == pytest.approx(3.0)

    def test_no_matches_infinite_ratio(self):
        relation = MatchRelation([[0, 0]], [0])
        assert relation.imbalance_ratio == float("inf")

    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            MatchRelation([[0, 1, 2]], [0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            MatchRelation([[0, 1]], [0, 1])


class TestBuildPairPool:
    def test_full_pool_when_size_none(self):
        pairs = cross_product_pairs(3, 3)
        pool = build_pair_pool(pairs)
        assert len(pool) == 9

    def test_subsampling(self):
        pairs = cross_product_pairs(10, 10)
        pool = build_pair_pool(pairs, 25, random_state=0)
        assert len(pool) == 25
        # No duplicate rows.
        assert len({tuple(p) for p in pool}) == 25

    def test_guaranteed_rows_included(self):
        pairs = cross_product_pairs(10, 10)
        pool = build_pair_pool(pairs, 5, guarantee_indices=[3, 77], random_state=0)
        pool_set = {tuple(p) for p in pool}
        assert tuple(pairs[3]) in pool_set
        assert tuple(pairs[77]) in pool_set

    def test_too_many_guarantees_raises(self):
        pairs = cross_product_pairs(3, 3)
        with pytest.raises(ValueError, match="exceed pool size"):
            build_pair_pool(pairs, 2, guarantee_indices=[0, 1, 2])

    def test_deterministic_given_seed(self):
        pairs = cross_product_pairs(8, 8)
        a = build_pair_pool(pairs, 10, random_state=5)
        b = build_pair_pool(pairs, 10, random_state=5)
        np.testing.assert_array_equal(a, b)


class TestPairSpaceGuards:
    def test_cross_product_guard_names_the_alternatives(self):
        with pytest.raises(PairSpaceError, match="minhash_lsh_pairs"):
            cross_product_pairs(100_000, 100_000)
        with pytest.raises(PairSpaceError, match="sample_pair_pool"):
            cross_product_pairs(100_000, 100_000)

    def test_dedup_guard(self):
        with pytest.raises(PairSpaceError, match="iter_dedup_pairs"):
            dedup_pairs(500_000)

    def test_guard_is_configurable(self):
        with pytest.raises(PairSpaceError):
            cross_product_pairs(10, 10, max_elements=99)
        assert len(cross_product_pairs(10, 10, max_elements=100)) == 100

    def test_none_disables_the_guard(self):
        assert len(cross_product_pairs(300, 400, max_elements=None)) == 120_000

    def test_guard_is_a_value_error(self):
        # Callers that already catch ValueError keep working.
        with pytest.raises(ValueError):
            cross_product_pairs(100_000, 100_000)


class TestStreamingPairSpaces:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_cross_product_stream_matches_eager(self, chunk_size):
        eager = cross_product_pairs(13, 9)
        streamed = np.concatenate(
            list(iter_cross_product_pairs(13, 9, chunk_size))
        )
        np.testing.assert_array_equal(streamed, eager)

    @pytest.mark.parametrize("chunk_size", [1, 5, 64, 10_000])
    def test_dedup_stream_matches_eager(self, chunk_size):
        eager = dedup_pairs(17)
        streamed = np.concatenate(list(iter_dedup_pairs(17, chunk_size)))
        np.testing.assert_array_equal(streamed, eager)

    def test_stream_block_sizes_bounded(self):
        blocks = list(iter_cross_product_pairs(20, 20, 64))
        assert all(len(b) <= 64 for b in blocks)
        assert all(len(b) == 64 for b in blocks[:-1])

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            next(iter_cross_product_pairs(2, 2, 0))
        with pytest.raises(ValueError, match="chunk_size"):
            next(iter_dedup_pairs(4, 0))

    def test_streams_a_guarded_size(self):
        """The generator happily walks a space the eager path refuses."""
        with pytest.raises(PairSpaceError):
            cross_product_pairs(60_000, 60_000)
        first = next(iter_cross_product_pairs(60_000, 60_000, 4))
        np.testing.assert_array_equal(
            first, [[0, 0], [0, 1], [0, 2], [0, 3]]
        )


class TestSamplePairPool:
    def test_distinct_in_range_sorted(self):
        pool = sample_pair_pool(1_000, 2_000, 500, random_state=0)
        assert pool.shape == (500, 2)
        keys = pool[:, 0] * 2_000 + pool[:, 1]
        assert len(np.unique(keys)) == 500
        assert np.all(np.diff(keys) > 0)
        assert pool[:, 0].max() < 1_000 and pool[:, 1].max() < 2_000

    def test_never_materialises_the_space(self):
        # 3.6e9-pair space; the pool is tiny and fast.
        pool = sample_pair_pool(60_000, 60_000, 100, random_state=1)
        assert len(pool) == 100

    def test_guaranteed_pairs_included(self):
        wanted = np.array([[7, 8], [0, 0]])
        pool = sample_pair_pool(
            50, 50, 10, guarantee_pairs=wanted, random_state=2
        )
        pool_set = {tuple(p) for p in pool}
        assert (7, 8) in pool_set and (0, 0) in pool_set

    def test_pool_size_exceeding_space_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            sample_pair_pool(3, 3, 10)

    def test_too_many_guarantees_raise(self):
        with pytest.raises(ValueError, match="exceed pool size"):
            sample_pair_pool(
                50, 50, 2, guarantee_pairs=[[0, 0], [1, 1], [2, 2]]
            )

    def test_deterministic_given_seed(self):
        a = sample_pair_pool(100, 100, 40, random_state=9)
        b = sample_pair_pool(100, 100, 40, random_state=9)
        np.testing.assert_array_equal(a, b)


class TestBaseStoreAccessors:
    def test_normalised_field_cached_per_store_and_field(self):
        store = RecordStore(("f",))
        store.add(Record(0, 0, {"f": "  Mixed CASE  "}))
        first = store.normalised_field("f")
        assert first == ["mixed case"]
        assert store.normalised_field("f") is first  # cached list

    def test_append_invalidates_normalised_cache(self):
        store = RecordStore(("f",))
        store.add(Record(0, 0, {"f": "A"}))
        assert store.normalised_field("f") == ["a"]
        store.add(Record(1, 1, {"f": "B"}))
        assert store.normalised_field("f") == ["a", "b"]

    def test_iter_field_chunks_bounded_and_complete(self):
        store = make_store(list(range(10)))
        blocks = list(store.iter_field_chunks("f", 3))
        assert [len(b) for b in blocks] == [3, 3, 3, 1]
        assert [v for b in blocks for v in b] == store.field_values("f")

    def test_iter_normalised_chunks_match_whole_column(self):
        store = RecordStore(("f",))
        for i, text in enumerate(["Alpha", None, "  beta "]):
            fields = {} if text is None else {"f": text}
            store.add(Record(i, i, fields))
        flat = [v for b in store.iter_normalised_chunks("f", 2) for v in b]
        assert flat == store.normalised_field("f") == ["alpha", "", "beta"]

    def test_chunk_size_validated(self):
        store = make_store([1])
        with pytest.raises(ValueError, match="chunk_size"):
            next(store.iter_field_chunks("f", 0))

    def test_unknown_field_raises(self):
        store = make_store([1])
        with pytest.raises(KeyError, match="unknown field"):
            next(store.iter_field_chunks("nope"))
