"""Tests for record stores, pair spaces and the match relation."""

import numpy as np
import pytest

from repro.pipeline import (
    MatchRelation,
    Record,
    RecordStore,
    build_pair_pool,
    cross_product_pairs,
    dedup_pairs,
)


def make_store(entity_ids, name="db"):
    store = RecordStore(("f",), name=name)
    for i, eid in enumerate(entity_ids):
        store.add(Record(record_id=i, entity_id=eid, fields={"f": str(eid)}))
    return store


class TestRecordStore:
    def test_add_and_len(self):
        store = make_store([1, 2, 3])
        assert len(store) == 3

    def test_schema_violation_raises(self):
        store = RecordStore(("a",))
        with pytest.raises(ValueError, match="outside schema"):
            store.add(Record(0, 0, {"b": 1}))

    def test_field_values_order(self):
        store = make_store([5, 7])
        assert store.field_values("f") == ["5", "7"]

    def test_field_values_unknown_field(self):
        store = make_store([1])
        with pytest.raises(KeyError, match="unknown field"):
            store.field_values("nope")

    def test_missing_field_is_none(self):
        store = RecordStore(("a", "b"))
        store.add(Record(0, 0, {"a": 1}))
        assert store.field_values("b") == [None]

    def test_entity_ids(self):
        store = make_store([4, 4, 9])
        np.testing.assert_array_equal(store.entity_ids(), [4, 4, 9])

    def test_record_getitem(self):
        record = Record(0, 1, {"x": "v"})
        assert record["x"] == "v"
        assert record.get("missing", "d") == "d"


class TestPairSpaces:
    def test_cross_product_shape(self):
        pairs = cross_product_pairs(3, 4)
        assert pairs.shape == (12, 2)

    def test_cross_product_coverage(self):
        pairs = cross_product_pairs(2, 2)
        assert {tuple(p) for p in pairs} == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_dedup_pairs_count(self):
        pairs = dedup_pairs(5)
        assert len(pairs) == 10  # C(5, 2)

    def test_dedup_pairs_strictly_upper(self):
        pairs = dedup_pairs(6)
        assert np.all(pairs[:, 0] < pairs[:, 1])


class TestMatchRelation:
    def test_from_entity_ids(self):
        store_a = make_store([1, 2])
        store_b = make_store([2, 3])
        pairs = cross_product_pairs(2, 2)
        relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)
        # Only (record 1 of A, record 0 of B) shares entity 2.
        assert relation.n_matches == 1
        match_row = relation.pairs[relation.labels == 1][0]
        assert tuple(match_row) == (1, 0)

    def test_imbalance_ratio(self):
        relation = MatchRelation([[0, 0], [0, 1], [1, 0], [1, 1]], [1, 0, 0, 0])
        assert relation.imbalance_ratio == pytest.approx(3.0)

    def test_no_matches_infinite_ratio(self):
        relation = MatchRelation([[0, 0]], [0])
        assert relation.imbalance_ratio == float("inf")

    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            MatchRelation([[0, 1, 2]], [0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            MatchRelation([[0, 1]], [0, 1])


class TestBuildPairPool:
    def test_full_pool_when_size_none(self):
        pairs = cross_product_pairs(3, 3)
        pool = build_pair_pool(pairs)
        assert len(pool) == 9

    def test_subsampling(self):
        pairs = cross_product_pairs(10, 10)
        pool = build_pair_pool(pairs, 25, random_state=0)
        assert len(pool) == 25
        # No duplicate rows.
        assert len({tuple(p) for p in pool}) == 25

    def test_guaranteed_rows_included(self):
        pairs = cross_product_pairs(10, 10)
        pool = build_pair_pool(pairs, 5, guarantee_indices=[3, 77], random_state=0)
        pool_set = {tuple(p) for p in pool}
        assert tuple(pairs[3]) in pool_set
        assert tuple(pairs[77]) in pool_set

    def test_too_many_guarantees_raises(self):
        pairs = cross_product_pairs(3, 3)
        with pytest.raises(ValueError, match="exceed pool size"):
            build_pair_pool(pairs, 2, guarantee_indices=[0, 1, 2])

    def test_deterministic_given_seed(self):
        pairs = cross_product_pairs(8, 8)
        a = build_pair_pool(pairs, 10, random_state=5)
        b = build_pair_pool(pairs, 10, random_state=5)
        np.testing.assert_array_equal(a, b)
