"""Blocking quality on realistic generated data.

Blocking is a recall/efficiency trade: it must discard most of the
pair space while keeping most true matches.  These tests measure both
sides on generated product catalogues.
"""

import numpy as np
import pytest

from repro.datasets import generate_product_pair
from repro.pipeline import (
    MatchRelation,
    cross_product_pairs,
    sorted_neighbourhood_pairs,
    token_blocking_pairs,
)


@pytest.fixture(scope="module")
def catalogues():
    store_a, store_b = generate_product_pair(
        150, overlap=0.5, noise_level=1.0, random_state=3
    )
    pairs = cross_product_pairs(len(store_a), len(store_b))
    relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)
    match_set = {
        tuple(p) for p in relation.pairs[relation.labels == 1]
    }
    return store_a, store_b, len(pairs), match_set


class TestTokenBlockingQuality:
    def test_recall_high(self, catalogues):
        store_a, store_b, __, match_set = catalogues
        blocked = {tuple(p) for p in token_blocking_pairs(store_a, store_b, "name")}
        recall = len(blocked & match_set) / len(match_set)
        # Name corruption is mild: token blocking must retain nearly
        # every true match.
        assert recall > 0.9

    def test_reduction_substantial(self, catalogues):
        store_a, store_b, n_pairs, __ = catalogues
        blocked = token_blocking_pairs(store_a, store_b, "name")
        assert len(blocked) < 0.5 * n_pairs

    def test_description_field_blocks_more_pairs(self, catalogues):
        # Long-text fields share more tokens -> weaker reduction.
        store_a, store_b, __, ___ = catalogues
        by_name = token_blocking_pairs(store_a, store_b, "name")
        by_description = token_blocking_pairs(store_a, store_b, "description")
        assert len(by_description) >= len(by_name)


class TestSortedNeighbourhoodQuality:
    def test_recall_reasonable(self, catalogues):
        store_a, store_b, __, match_set = catalogues
        blocked = {
            tuple(p)
            for p in sorted_neighbourhood_pairs(store_a, store_b, "name", window=10)
        }
        recall = len(blocked & match_set) / len(match_set)
        # Sort-key corruption can displace some matches out of the
        # window; most should survive.
        assert recall > 0.5

    def test_reduction_much_stronger_than_token(self, catalogues):
        store_a, store_b, n_pairs, __ = catalogues
        blocked = sorted_neighbourhood_pairs(store_a, store_b, "name", window=10)
        assert len(blocked) < 0.1 * n_pairs

    def test_recall_grows_with_window(self, catalogues):
        store_a, store_b, __, match_set = catalogues

        def recall(window):
            blocked = {
                tuple(p)
                for p in sorted_neighbourhood_pairs(
                    store_a, store_b, "name", window=window
                )
            }
            return len(blocked & match_set)

        assert recall(20) >= recall(4)
