"""Tests for the matching stage and pipeline orchestration."""

import numpy as np
import pytest

from repro.classifiers import LogisticRegression
from repro.datasets.products import generate_product_pair
from repro.pipeline import (
    ERPipeline,
    FieldSpec,
    MatchRelation,
    PairFeatureExtractor,
    cross_product_pairs,
    threshold_match,
)


class TestThresholdMatch:
    def test_basic(self):
        out = threshold_match([-1.0, 0.0, 0.5], threshold=0.0)
        np.testing.assert_array_equal(out, [0, 1, 1])

    def test_probability_threshold(self):
        out = threshold_match([0.2, 0.7], threshold=0.5)
        np.testing.assert_array_equal(out, [0, 1])

    def test_dtype(self):
        assert threshold_match([1.0]).dtype == np.int8


class TestERPipeline:
    @pytest.fixture(scope="class")
    def fitted(self):
        store_a, store_b = generate_product_pair(
            60, overlap=0.5, noise_level=0.5, random_state=0
        )
        pairs = cross_product_pairs(len(store_a), len(store_b))
        relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)
        extractor = PairFeatureExtractor(
            [
                FieldSpec("name", "short_text"),
                FieldSpec("description", "long_text"),
                FieldSpec("price", "numeric"),
            ]
        )
        pipeline = ERPipeline(extractor, LogisticRegression(), threshold=0.0)
        rng = np.random.default_rng(1)
        # Train on matches + a sample of non-matches.
        match_rows = np.nonzero(relation.labels == 1)[0]
        nonmatch_rows = rng.choice(
            np.nonzero(relation.labels == 0)[0], size=300, replace=False
        )
        train_rows = np.concatenate([match_rows, nonmatch_rows])
        pipeline.fit(store_a, store_b, pairs[train_rows], relation.labels[train_rows])
        return pipeline, pairs, relation

    def test_scores_separate_classes(self, fitted):
        pipeline, pairs, relation = fitted
        scores = pipeline.score_pairs(pairs)
        mean_match = scores[relation.labels == 1].mean()
        mean_nonmatch = scores[relation.labels == 0].mean()
        assert mean_match > mean_nonmatch

    def test_resolve_consistency(self, fitted):
        pipeline, pairs, __ = fitted
        subset = pairs[:50]
        out = pipeline.resolve(subset)
        np.testing.assert_array_equal(
            out["predictions"], threshold_match(out["scores"], pipeline.threshold)
        )

    def test_predict_pairs_reuses_scores(self, fitted):
        pipeline, pairs, __ = fitted
        subset = pairs[:20]
        scores = pipeline.score_pairs(subset)
        preds = pipeline.predict_pairs(subset, scores=scores)
        np.testing.assert_array_equal(preds, threshold_match(scores, 0.0))

    def test_probability_scoring(self, fitted):
        pipeline, pairs, __ = fitted
        pipeline.use_probabilities = True
        try:
            probs = pipeline.score_pairs(pairs[:30])
            assert np.all((probs >= 0) & (probs <= 1))
        finally:
            pipeline.use_probabilities = False

    def test_probability_scoring_requires_predict_proba(self, fitted):
        pipeline, pairs, __ = fitted

        class MarginOnly:
            def decision_function(self, X):
                return np.zeros(len(X))

        bad = ERPipeline(pipeline.extractor, MarginOnly(), use_probabilities=True)
        with pytest.raises(AttributeError, match="predict_proba"):
            bad.score_pairs(pairs[:2])

    def test_pipeline_recovers_matches(self, fitted):
        pipeline, pairs, relation = fitted
        out = pipeline.resolve(pairs)
        preds = out["predictions"]
        # The pipeline should recover a solid fraction of true matches
        # on this low-noise dataset.
        recall = preds[relation.labels == 1].mean()
        assert recall > 0.6
