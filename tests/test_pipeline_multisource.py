"""Tests for multi-source ER support (Remark 1)."""

import numpy as np
import pytest

from repro.datasets import generate_product_pair
from repro.oracle import DeterministicOracle
from repro.core import OASISSampler
from repro.pipeline import (
    MultiSourcePool,
    Record,
    RecordStore,
    multi_source_pairs,
)


def make_store(entity_ids):
    store = RecordStore(("f",))
    for i, eid in enumerate(entity_ids):
        store.add(Record(i, eid, {"f": str(eid)}))
    return store


@pytest.fixture
def three_sources():
    return [
        make_store([0, 1, 2]),
        make_store([1, 3]),
        make_store([2, 3, 4, 5]),
    ]


class TestMultiSourcePairs:
    def test_pair_count(self, three_sources):
        pairs = multi_source_pairs(three_sources)
        # 3*2 + 3*4 + 2*4 = 26 cross-source pairs.
        assert len(pairs) == 26

    def test_no_intra_source_pairs(self, three_sources):
        pool = MultiSourcePool(three_sources)
        pairs = pool.cross_source_pairs()
        for i, j in pairs:
            assert pool.locate(int(i))[0] != pool.locate(int(j))[0]

    def test_requires_two_sources(self):
        with pytest.raises(ValueError, match="two sources"):
            multi_source_pairs([make_store([0])])


class TestMultiSourcePool:
    def test_global_index_round_trip(self, three_sources):
        pool = MultiSourcePool(three_sources)
        for source in range(3):
            for local in range(len(three_sources[source])):
                global_index = pool.global_index(source, local)
                assert pool.locate(global_index) == (source, local)

    def test_total_records(self, three_sources):
        assert MultiSourcePool(three_sources).total_records == 9

    def test_record_access(self, three_sources):
        pool = MultiSourcePool(three_sources)
        # Source 1, local 0 has entity id 1.
        assert pool.record(pool.global_index(1, 0)).entity_id == 1

    def test_entity_ids_concatenated(self, three_sources):
        ids = MultiSourcePool(three_sources).entity_ids()
        np.testing.assert_array_equal(ids, [0, 1, 2, 1, 3, 2, 3, 4, 5])

    def test_true_labels(self, three_sources):
        pool = MultiSourcePool(three_sources)
        pairs = pool.cross_source_pairs()
        labels = pool.true_labels(pairs)
        # Matches: entity 1 (src0-src1), entity 2 (src0-src2),
        # entity 3 (src1-src2).
        assert labels.sum() == 3

    def test_bounds_checks(self, three_sources):
        pool = MultiSourcePool(three_sources)
        with pytest.raises(IndexError):
            pool.global_index(5, 0)
        with pytest.raises(IndexError):
            pool.locate(99)

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MultiSourcePool([make_store([0]), RecordStore(("f",))])


class TestEndToEndThreeSources:
    def test_oasis_on_three_source_pool(self):
        # Three product catalogues sharing entities pairwise.
        store_a, store_b = generate_product_pair(
            60, overlap=0.6, noise_level=0.8, random_state=0
        )
        store_c, __ = generate_product_pair(
            60, overlap=0.6, noise_level=0.8, random_state=0
        )
        pool = MultiSourcePool([store_a, store_b, store_c])
        pairs = pool.cross_source_pairs()
        labels = pool.true_labels(pairs)
        assert labels.sum() > 0

        # Score with a noisy proxy of the truth (the sampler only needs
        # scores correlated with labels).
        rng = np.random.default_rng(1)
        scores = labels + rng.normal(0, 0.4, size=len(labels))
        predictions = (scores > 0.5).astype(np.int8)

        sampler = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            threshold=0.5, random_state=0,
        )
        sampler.sample_until_budget(500)
        assert 0.0 <= sampler.estimate <= 1.0
