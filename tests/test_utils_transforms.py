"""Tests for numeric transforms (expit/logit/normalise/safe_divide)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import expit, logit, normalise, safe_divide


class TestExpit:
    def test_zero(self):
        assert expit(0.0) == pytest.approx(0.5)

    def test_symmetry(self):
        assert expit(3.0) + expit(-3.0) == pytest.approx(1.0)

    def test_extreme_negative_no_overflow(self):
        assert expit(-1000.0) == pytest.approx(0.0, abs=1e-12)

    def test_extreme_positive(self):
        assert expit(1000.0) == pytest.approx(1.0)

    def test_vectorised(self):
        out = expit(np.array([-1.0, 0.0, 1.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_scalar_returns_float(self):
        assert isinstance(expit(1.2), float)

    @given(st.floats(-50, 50))
    def test_range(self, x):
        assert 0.0 <= expit(x) <= 1.0

    @given(st.floats(-20, 20))
    def test_logit_inverse(self, x):
        # Round-trip is exact well inside the sigmoid's float64 range;
        # beyond ~25 the clip in logit() limits attainable precision.
        assert logit(expit(x)) == pytest.approx(x, rel=1e-6, abs=1e-6)


class TestLogit:
    def test_half(self):
        assert logit(0.5) == pytest.approx(0.0)

    def test_clipping_at_zero(self):
        assert np.isfinite(logit(0.0))

    def test_clipping_at_one(self):
        assert np.isfinite(logit(1.0))

    def test_monotone(self):
        out = logit(np.array([0.1, 0.4, 0.9]))
        assert np.all(np.diff(out) > 0)


class TestNormalise:
    def test_simple(self):
        np.testing.assert_allclose(normalise([1, 1, 2]), [0.25, 0.25, 0.5])

    def test_zero_weights_fall_back_to_uniform(self):
        np.testing.assert_allclose(normalise([0.0, 0.0]), [0.5, 0.5])

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalise([1.0, -0.5])

    def test_sums_to_one(self):
        out = normalise(np.random.default_rng(0).random(20))
        assert out.sum() == pytest.approx(1.0)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=30))
    def test_property_probability_vector(self, weights):
        out = normalise(weights)
        assert np.all(out >= 0)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)


class TestSafeDivide:
    def test_plain(self):
        assert safe_divide(6.0, 3.0) == pytest.approx(2.0)

    def test_zero_denominator_gives_fill(self):
        assert np.isnan(safe_divide(1.0, 0.0))

    def test_custom_fill(self):
        assert safe_divide(1.0, 0.0, fill=-1.0) == -1.0

    def test_vectorised(self):
        out = safe_divide(np.array([1.0, 2.0]), np.array([0.0, 4.0]))
        assert np.isnan(out[0])
        assert out[1] == pytest.approx(0.5)
