"""Tests for the labelling oracles."""

import numpy as np
import pytest

from repro.oracle import (
    CountingOracle,
    CrowdOracle,
    DeterministicOracle,
    NoisyOracle,
)


class TestDeterministicOracle:
    def test_labels_match_ground_truth(self):
        oracle = DeterministicOracle([1, 0, 1])
        assert oracle.label(0) == 1
        assert oracle.label(1) == 0
        assert oracle.label(2) == 1

    def test_probability_zero_one(self):
        oracle = DeterministicOracle([1, 0])
        assert oracle.probability(0) == 1.0
        assert oracle.probability(1) == 0.0

    def test_callable_interface(self):
        oracle = DeterministicOracle([0, 1])
        assert oracle(1) == 1

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="binary"):
            DeterministicOracle([0, 2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            DeterministicOracle([[0, 1]])

    def test_labels_view_read_only(self):
        oracle = DeterministicOracle([0, 1])
        with pytest.raises(ValueError):
            oracle.labels[0] = 1

    def test_len(self):
        assert len(DeterministicOracle([0, 1, 0])) == 3


class TestNoisyOracle:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            NoisyOracle()
        with pytest.raises(ValueError, match="exactly one"):
            NoisyOracle([0.5], true_labels=[1])

    def test_probability_passthrough(self):
        oracle = NoisyOracle([0.3, 0.9])
        assert oracle.probability(0) == pytest.approx(0.3)
        assert oracle.probability(1) == pytest.approx(0.9)

    def test_flip_probability_construction(self):
        oracle = NoisyOracle(true_labels=[1, 0], flip_prob=0.1)
        assert oracle.probability(0) == pytest.approx(0.9)
        assert oracle.probability(1) == pytest.approx(0.1)

    def test_extreme_probabilities_deterministic(self):
        oracle = NoisyOracle([1.0, 0.0], random_state=0)
        assert all(oracle.label(0) == 1 for __ in range(20))
        assert all(oracle.label(1) == 0 for __ in range(20))

    def test_empirical_rate_close(self):
        oracle = NoisyOracle([0.7], random_state=0)
        draws = [oracle.label(0) for __ in range(4000)]
        assert np.mean(draws) == pytest.approx(0.7, abs=0.03)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            NoisyOracle([1.5])

    def test_invalid_flip_raises(self):
        with pytest.raises(ValueError, match="flip_prob"):
            NoisyOracle(true_labels=[1], flip_prob=0.6)


class TestCrowdOracle:
    def test_even_workers_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            CrowdOracle([1, 0], [0.9, 0.9])

    def test_perfect_workers(self):
        oracle = CrowdOracle([1, 0, 1], [1.0, 1.0, 1.0], random_state=0)
        assert oracle.label(0) == 1
        assert oracle.label(1) == 0
        assert oracle.majority_accuracy == pytest.approx(1.0)

    def test_majority_accuracy_homogeneous(self):
        # 3 workers at 0.8: P(majority correct) = p^3 + 3 p^2 (1-p).
        oracle = CrowdOracle([1], [0.8, 0.8, 0.8], random_state=0)
        expected = 0.8**3 + 3 * 0.8**2 * 0.2
        assert oracle.majority_accuracy == pytest.approx(expected)

    def test_majority_beats_single_worker(self):
        oracle = CrowdOracle([1], [0.7] * 5, random_state=0)
        assert oracle.majority_accuracy > 0.7

    def test_probability_reflects_truth(self):
        oracle = CrowdOracle([1, 0], [0.9, 0.9, 0.9], random_state=0)
        assert oracle.probability(0) == pytest.approx(oracle.majority_accuracy)
        assert oracle.probability(1) == pytest.approx(1 - oracle.majority_accuracy)

    def test_empirical_accuracy(self):
        oracle = CrowdOracle([1], [0.8, 0.8, 0.8], random_state=1)
        draws = [oracle.label(0) for __ in range(3000)]
        assert np.mean(draws) == pytest.approx(oracle.majority_accuracy, abs=0.03)

    def test_wilson_interval_contains_p(self):
        oracle = CrowdOracle([1], [0.8] * 3, random_state=0)
        lo, hi = oracle.wilson_interval(100)
        assert lo <= oracle.majority_accuracy <= hi

    def test_wilson_interval_shrinks(self):
        oracle = CrowdOracle([1], [0.8] * 3, random_state=0)
        lo1, hi1 = oracle.wilson_interval(50)
        lo2, hi2 = oracle.wilson_interval(5000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_invalid_accuracy_raises(self):
        with pytest.raises(ValueError):
            CrowdOracle([1], [1.2])


class TestCountingOracle:
    def test_counts_every_query(self):
        oracle = CountingOracle(DeterministicOracle([1, 0, 1]))
        oracle.label(0)
        oracle.label(0)
        oracle.label(2)
        assert oracle.n_queries == 3
        assert oracle.n_distinct == 2

    def test_probability_passthrough(self):
        oracle = CountingOracle(DeterministicOracle([1, 0]))
        assert oracle.probability(0) == 1.0
        assert oracle.n_queries == 0  # probability is not a query

    def test_reset(self):
        oracle = CountingOracle(DeterministicOracle([1]))
        oracle.label(0)
        oracle.reset()
        assert oracle.n_queries == 0
        assert oracle.n_distinct == 0
