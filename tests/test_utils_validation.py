"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.utils import (
    check_count,
    check_in_range,
    check_positive,
    check_probability_vector,
    check_same_length,
)


class TestCheckCount:
    def test_positive_int_ok(self):
        assert check_count(3, "batch_size") == 3
        assert check_count(1, "batch_size") == 1

    def test_returns_python_int(self):
        out = check_count(np.int64(5), "budget")
        assert out == 5 and type(out) is int

    def test_integral_float_coerced(self):
        assert check_count(4.0, "budget") == 4

    def test_fractional_float_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            check_count(4.5, "budget")

    def test_below_minimum_rejected_with_name(self):
        with pytest.raises(ValueError, match="batch_size must be an integer >= 1"):
            check_count(0, "batch_size")

    def test_custom_minimum(self):
        assert check_count(0, "n_iterations", minimum=0) == 0
        with pytest.raises(ValueError, match="n_iterations"):
            check_count(-1, "n_iterations", minimum=0)

    def test_bool_rejected(self):
        with pytest.raises(ValueError, match="flag"):
            check_count(True, "flag")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            check_count("four", "workers")

    def test_shared_message_across_layers(self):
        """The point of centralising: samplers, runner and CLI agree."""
        from repro.oracle import DeterministicOracle
        from repro.samplers import PassiveSampler

        sampler = PassiveSampler([0, 1], [0.1, 0.9],
                                 DeterministicOracle([0, 1]), random_state=0)
        with pytest.raises(ValueError) as from_sampler:
            sampler.sample_batch(0)
        with pytest.raises(ValueError) as from_validator:
            check_count(0, "batch_size")
        assert str(from_sampler.value) == str(from_validator.value)


class TestCheckInRange:
    def test_inside(self):
        assert check_in_range(0.5, 0, 1, "x") == 0.5

    def test_boundary_closed(self):
        assert check_in_range(0.0, 0, 1, "x") == 0.0
        assert check_in_range(1.0, 0, 1, "x") == 1.0

    def test_low_open_excludes_bound(self):
        with pytest.raises(ValueError, match=r"\(0"):
            check_in_range(0.0, 0, 1, "x", low_open=True)

    def test_high_open_excludes_bound(self):
        with pytest.raises(ValueError, match=r"1\)"):
            check_in_range(1.0, 0, 1, "x", high_open=True)

    def test_outside_raises_with_name(self):
        with pytest.raises(ValueError, match="epsilon"):
            check_in_range(2.0, 0, 1, "epsilon")


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(1.5, "x") == 1.5

    def test_zero_rejected_by_default(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive(0.0, "x")

    def test_zero_allowed_when_requested(self):
        assert check_positive(0.0, "x", allow_zero=True) == 0.0

    def test_negative_always_rejected(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", allow_zero=True)


class TestCheckProbabilityVector:
    def test_valid(self):
        p = check_probability_vector([0.25, 0.75])
        np.testing.assert_allclose(p, [0.25, 0.75])

    def test_not_summing_raises(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector([0.5, 0.1])

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector([1.5, -0.5])

    def test_two_dimensional_raises(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_probability_vector([[0.5, 0.5]])

    def test_small_negative_noise_clipped(self):
        p = check_probability_vector([1.0 + 1e-10, -1e-10])
        assert np.all(p >= 0)


class TestCheckSameLength:
    def test_equal(self):
        assert check_same_length([1, 2], [3, 4]) == 2

    def test_empty_call(self):
        assert check_same_length() == 0

    def test_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            check_same_length([1], [2, 3])

    def test_names_in_message(self):
        with pytest.raises(ValueError, match="left=1, right=2"):
            check_same_length([1], [2, 3], names=["left", "right"])
