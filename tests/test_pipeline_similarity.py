"""Tests for attribute-level similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pipeline import (
    TfidfVectoriser,
    cosine_tfidf_similarity,
    jaccard_ngram_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    ngrams,
    normalised_numeric_similarity,
)

text_strategy = st.text(alphabet="abcdefg ", max_size=20)


class TestNgrams:
    def test_basic_trigrams(self):
        grams = ngrams("abc", 3, pad=False)
        assert grams == {"abc"}

    def test_padding_adds_boundary_grams(self):
        grams = ngrams("ab", 2)
        assert "\x00a" in grams
        assert "b\x00" in grams

    def test_empty_string(self):
        assert ngrams("") == set()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)


class TestJaccard:
    def test_identical(self):
        assert jaccard_ngram_similarity("hello", "hello") == pytest.approx(1.0)

    def test_disjoint(self):
        assert jaccard_ngram_similarity("aaa", "zzz") == pytest.approx(0.0)

    def test_empty_pair_is_zero(self):
        assert jaccard_ngram_similarity("", "") == 0.0

    def test_one_empty(self):
        assert jaccard_ngram_similarity("abc", "") == 0.0

    @given(text_strategy, text_strategy)
    def test_property_symmetric(self, a, b):
        assert jaccard_ngram_similarity(a, b) == pytest.approx(
            jaccard_ngram_similarity(b, a)
        )

    @given(text_strategy, text_strategy)
    def test_property_bounded(self, a, b):
        assert 0.0 <= jaccard_ngram_similarity(a, b) <= 1.0

    @given(st.text(alphabet="abcdef", min_size=1, max_size=20))
    def test_property_identity(self, a):
        assert jaccard_ngram_similarity(a, a) == pytest.approx(1.0)


class TestLevenshtein:
    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_cases(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("", "") == 0

    def test_similarity_identical(self):
        assert levenshtein_similarity("same", "same") == pytest.approx(1.0)

    def test_similarity_empty_pair(self):
        assert levenshtein_similarity("", "") == 0.0

    @given(text_strategy, text_strategy)
    def test_property_symmetric(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(text_strategy, text_strategy, text_strategy)
    def test_property_triangle_inequality(self, a, b, c):
        ab = levenshtein_distance(a, b)
        bc = levenshtein_distance(b, c)
        ac = levenshtein_distance(a, c)
        assert ac <= ab + bc

    @given(text_strategy, text_strategy)
    def test_property_bounded_by_longest(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == pytest.approx(1.0)

    def test_known_value(self):
        # Classic MARTHA/MARHTA example: Jaro = 0.944...
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == pytest.approx(0.0)

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted >= plain

    def test_winkler_invalid_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)

    @given(text_strategy, text_strategy)
    def test_property_bounded(self, a, b):
        assert 0.0 <= jaro_winkler_similarity(a, b) <= 1.0 + 1e-9


class TestMongeElkan:
    def test_identical_tokens(self):
        assert monge_elkan_similarity("john smith", "john smith") == pytest.approx(1.0)

    def test_token_reorder_robust(self):
        assert monge_elkan_similarity("smith john", "john smith") == pytest.approx(1.0)

    def test_empty(self):
        assert monge_elkan_similarity("", "anything") == 0.0


class TestNumericSimilarity:
    def test_equal_values(self):
        assert normalised_numeric_similarity(5.0, 5.0) == pytest.approx(1.0)

    def test_relative_difference(self):
        # |10-5| / max(10,5) = 0.5.
        assert normalised_numeric_similarity(10.0, 5.0) == pytest.approx(0.5)

    def test_nan_gives_zero(self):
        assert normalised_numeric_similarity(float("nan"), 1.0) == 0.0

    def test_zero_pair(self):
        assert normalised_numeric_similarity(0.0, 0.0) == pytest.approx(1.0)

    def test_explicit_scale(self):
        assert normalised_numeric_similarity(1.0, 3.0, scale=4.0) == pytest.approx(0.5)

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_property_bounded(self, x, y):
        assert 0.0 <= normalised_numeric_similarity(x, y) <= 1.0


class TestTfidf:
    def test_identical_documents(self):
        corpus = ["red apple pie", "green pear tart", "red pear pie"]
        vec = TfidfVectoriser().fit(corpus)
        assert cosine_tfidf_similarity("red apple pie", "red apple pie", vec) == pytest.approx(1.0)

    def test_disjoint_documents(self):
        vec = TfidfVectoriser().fit(["aa bb", "cc dd"])
        assert cosine_tfidf_similarity("aa bb", "cc dd", vec) == pytest.approx(0.0)

    def test_unknown_tokens_ignored(self):
        vec = TfidfVectoriser().fit(["known words here"])
        assert cosine_tfidf_similarity("unknown", "unknown", vec) == 0.0

    def test_rare_tokens_weigh_more(self):
        # Shared rare token should beat shared common token.
        corpus = ["common rare1", "common rare2", "common other", "common thing"]
        vec = TfidfVectoriser().fit(corpus)
        rare = cosine_tfidf_similarity("rare1 x", "rare1 y", vec)
        common = cosine_tfidf_similarity("common x", "common y", vec)
        assert rare >= common

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            TfidfVectoriser().transform_one("text")

    def test_min_df_filters(self):
        vec = TfidfVectoriser(min_df=2).fit(["once upon", "upon twice"])
        assert "once" not in vec.idf_
        assert "upon" in vec.idf_
