"""Tests for attribute-level similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import numpy as np

from repro.pipeline import (
    SparseVectorMatrix,
    TfidfVectoriser,
    TokenSetMatrix,
    build_token_vocabulary,
    cosine_pairs,
    cosine_tfidf_similarity,
    jaccard_ngram_similarity,
    jaccard_pairs,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    ngrams,
    normalised_numeric_similarity,
    numeric_similarity_pairs,
)

text_strategy = st.text(alphabet="abcdefg ", max_size=20)


class TestNgrams:
    def test_basic_trigrams(self):
        grams = ngrams("abc", 3, pad=False)
        assert grams == {"abc"}

    def test_padding_adds_boundary_grams(self):
        grams = ngrams("ab", 2)
        assert "\x00a" in grams
        assert "b\x00" in grams

    def test_empty_string(self):
        assert ngrams("") == set()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)


class TestJaccard:
    def test_identical(self):
        assert jaccard_ngram_similarity("hello", "hello") == pytest.approx(1.0)

    def test_disjoint(self):
        assert jaccard_ngram_similarity("aaa", "zzz") == pytest.approx(0.0)

    def test_empty_pair_is_zero(self):
        assert jaccard_ngram_similarity("", "") == 0.0

    def test_one_empty(self):
        assert jaccard_ngram_similarity("abc", "") == 0.0

    @given(text_strategy, text_strategy)
    def test_property_symmetric(self, a, b):
        assert jaccard_ngram_similarity(a, b) == pytest.approx(
            jaccard_ngram_similarity(b, a)
        )

    @given(text_strategy, text_strategy)
    def test_property_bounded(self, a, b):
        assert 0.0 <= jaccard_ngram_similarity(a, b) <= 1.0

    @given(st.text(alphabet="abcdef", min_size=1, max_size=20))
    def test_property_identity(self, a):
        assert jaccard_ngram_similarity(a, a) == pytest.approx(1.0)


class TestLevenshtein:
    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_cases(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("", "") == 0

    def test_similarity_identical(self):
        assert levenshtein_similarity("same", "same") == pytest.approx(1.0)

    def test_similarity_empty_pair(self):
        assert levenshtein_similarity("", "") == 0.0

    @given(text_strategy, text_strategy)
    def test_property_symmetric(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(text_strategy, text_strategy, text_strategy)
    def test_property_triangle_inequality(self, a, b, c):
        ab = levenshtein_distance(a, b)
        bc = levenshtein_distance(b, c)
        ac = levenshtein_distance(a, c)
        assert ac <= ab + bc

    @given(text_strategy, text_strategy)
    def test_property_bounded_by_longest(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == pytest.approx(1.0)

    def test_known_value(self):
        # Classic MARTHA/MARHTA example: Jaro = 0.944...
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == pytest.approx(0.0)

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted >= plain

    def test_winkler_invalid_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)

    @given(text_strategy, text_strategy)
    def test_property_bounded(self, a, b):
        assert 0.0 <= jaro_winkler_similarity(a, b) <= 1.0 + 1e-9


class TestMongeElkan:
    def test_identical_tokens(self):
        assert monge_elkan_similarity("john smith", "john smith") == pytest.approx(1.0)

    def test_token_reorder_robust(self):
        assert monge_elkan_similarity("smith john", "john smith") == pytest.approx(1.0)

    def test_empty(self):
        assert monge_elkan_similarity("", "anything") == 0.0


class TestNumericSimilarity:
    def test_equal_values(self):
        assert normalised_numeric_similarity(5.0, 5.0) == pytest.approx(1.0)

    def test_relative_difference(self):
        # |10-5| / max(10,5) = 0.5.
        assert normalised_numeric_similarity(10.0, 5.0) == pytest.approx(0.5)

    def test_nan_gives_zero(self):
        assert normalised_numeric_similarity(float("nan"), 1.0) == 0.0

    def test_zero_pair(self):
        assert normalised_numeric_similarity(0.0, 0.0) == pytest.approx(1.0)

    def test_explicit_scale(self):
        assert normalised_numeric_similarity(1.0, 3.0, scale=4.0) == pytest.approx(0.5)

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_property_bounded(self, x, y):
        assert 0.0 <= normalised_numeric_similarity(x, y) <= 1.0


class TestTfidf:
    def test_identical_documents(self):
        corpus = ["red apple pie", "green pear tart", "red pear pie"]
        vec = TfidfVectoriser().fit(corpus)
        assert cosine_tfidf_similarity("red apple pie", "red apple pie", vec) == pytest.approx(1.0)

    def test_disjoint_documents(self):
        vec = TfidfVectoriser().fit(["aa bb", "cc dd"])
        assert cosine_tfidf_similarity("aa bb", "cc dd", vec) == pytest.approx(0.0)

    def test_unknown_tokens_ignored(self):
        vec = TfidfVectoriser().fit(["known words here"])
        assert cosine_tfidf_similarity("unknown", "unknown", vec) == 0.0

    def test_rare_tokens_weigh_more(self):
        # Shared rare token should beat shared common token.
        corpus = ["common rare1", "common rare2", "common other", "common thing"]
        vec = TfidfVectoriser().fit(corpus)
        rare = cosine_tfidf_similarity("rare1 x", "rare1 y", vec)
        common = cosine_tfidf_similarity("common x", "common y", vec)
        assert rare >= common

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            TfidfVectoriser().transform_one("text")

    def test_min_df_filters(self):
        vec = TfidfVectoriser(min_df=2).fit(["once upon", "upon twice"])
        assert "once" not in vec.idf_
        assert "upon" in vec.idf_


class TestArrayKernels:
    """Batch kernels vs their scalar counterparts."""

    def test_build_token_vocabulary_sorted_dense(self):
        vocab = build_token_vocabulary([{"b", "a"}, {"c", "a"}, set()])
        assert vocab == {"a": 0, "b": 1, "c": 2}

    def test_token_set_matrix_roundtrip(self):
        sets = [{"ab", "bc"}, set(), {"bc"}]
        vocab = build_token_vocabulary(sets)
        matrix = TokenSetMatrix.from_sets(sets, vocab)
        assert len(matrix) == 3
        assert matrix.row_lengths().tolist() == [2, 0, 1]
        # Rows are sorted id arrays.
        row0 = matrix.indices[matrix.indptr[0]:matrix.indptr[1]]
        assert row0.tolist() == sorted(row0.tolist())

    def test_jaccard_pairs_matches_scalar(self):
        texts = ["acme rocket", "zenith lamp", "", "acme rocket pro"]
        sets = [ngrams(t) for t in texts]
        vocab = build_token_vocabulary(sets)
        matrix = TokenSetMatrix.from_sets(sets, vocab)
        rows_a = np.array([0, 0, 1, 2, 2])
        rows_b = np.array([3, 1, 1, 2, 0])
        for method in ("auto", "merge", "bitmap"):
            batch = jaccard_pairs(matrix, rows_a, matrix, rows_b, method=method)
            expected = [
                jaccard_ngram_similarity(texts[i], texts[j])
                for i, j in zip(rows_a, rows_b)
            ]
            np.testing.assert_array_equal(batch, expected)

    def test_jaccard_pairs_rejects_unknown_method(self):
        sets = [ngrams("ab")]
        matrix = TokenSetMatrix.from_sets(sets, build_token_vocabulary(sets))
        with pytest.raises(ValueError, match="method"):
            jaccard_pairs(matrix, [0], matrix, [0], method="magic")

    def test_jaccard_pairs_requires_shared_vocabulary(self):
        m1 = TokenSetMatrix.from_sets([{"ab"}], {"ab": 0})
        m2 = TokenSetMatrix.from_sets([{"ab"}], {"ab": 0, "cd": 1})
        with pytest.raises(ValueError, match="vocabulary"):
            jaccard_pairs(m1, [0], m2, [0])

    def test_cosine_pairs_matches_scalar(self):
        corpus = [
            "fast reliable rocket for travel",
            "warm light for the desk",
            "",
            "fast rocket travel kit",
        ]
        vec = TfidfVectoriser().fit(corpus)
        matrix = vec.transform_matrix(corpus)
        rows_a = np.array([0, 0, 1, 2])
        rows_b = np.array([3, 1, 1, 0])
        batch = cosine_pairs(matrix, rows_a, matrix, rows_b)
        expected = [
            cosine_tfidf_similarity(corpus[i], corpus[j], vec)
            for i, j in zip(rows_a, rows_b)
        ]
        np.testing.assert_allclose(batch, expected, rtol=0.0, atol=1e-12)

    def test_cosine_pairs_argsort_fallback_agrees(self):
        """Huge-vocabulary inputs take the argsort path; results match."""
        corpus = ["alpha beta gamma", "beta gamma delta", "delta alpha"]
        vec = TfidfVectoriser().fit(corpus)
        matrix = vec.transform_matrix(corpus)
        rows_a = np.array([0, 1, 2])
        rows_b = np.array([1, 2, 0])
        packed = cosine_pairs(matrix, rows_a, matrix, rows_b)
        wide = SparseVectorMatrix(
            matrix.indptr, matrix.indices, matrix.data, 2**32
        )
        fallback = cosine_pairs(wide, rows_a, wide, rows_b)
        np.testing.assert_allclose(packed, fallback, rtol=0.0, atol=1e-15)

    def test_refit_invalidates_token_ids(self):
        vec = TfidfVectoriser().fit(["a b", "b c"])
        first = vec.transform_matrix(["a b"])
        assert first.n_tokens == 3
        vec.fit(["x y", "y z"])
        refitted = vec.transform_matrix(["x y"])  # must not reuse old ids
        assert refitted.n_tokens == 3
        assert vec.token_ids() == {"x": 0, "y": 1, "z": 2}

    def test_transform_matrix_matches_transform_one(self):
        corpus = ["red apple pie", "green pear tart", "red pear pie", ""]
        vec = TfidfVectoriser().fit(corpus)
        matrix = vec.transform_matrix(corpus)
        token_ids = vec.token_ids()
        for row, document in enumerate(corpus):
            dense = vec.transform_one(document)
            ids = matrix.indices[matrix.indptr[row]:matrix.indptr[row + 1]]
            weights = matrix.data[matrix.indptr[row]:matrix.indptr[row + 1]]
            assert {int(i) for i in ids} == {token_ids[t] for t in dense}
            by_id = {token_ids[t]: w for t, w in dense.items()}
            for token_id, weight in zip(ids, weights):
                assert weight == pytest.approx(by_id[int(token_id)], abs=1e-15)

    def test_numeric_similarity_pairs_matches_scalar(self):
        x = np.array([5.0, 10.0, float("nan"), 0.0, 1.0, -2.0])
        y = np.array([5.0, 5.0, 1.0, 0.0, 3.0, 2.0])
        batch = numeric_similarity_pairs(x, y)
        expected = [normalised_numeric_similarity(a, b) for a, b in zip(x, y)]
        np.testing.assert_array_equal(batch, expected)

    def test_numeric_similarity_pairs_explicit_scale(self):
        batch = numeric_similarity_pairs([1.0, 1.0], [3.0, 3.0], scale=4.0)
        np.testing.assert_allclose(batch, [0.5, 0.5])

    def test_empty_blocks(self):
        sets = [ngrams("ab")]
        matrix = TokenSetMatrix.from_sets(sets, build_token_vocabulary(sets))
        assert jaccard_pairs(matrix, [], matrix, []).shape == (0,)
        vec = TfidfVectoriser().fit(["a b"])
        docs = vec.transform_matrix(["a b"])
        assert cosine_pairs(docs, [], docs, []).shape == (0,)
        assert numeric_similarity_pairs([], []).shape == (0,)

    def test_mismatched_row_arrays_rejected(self):
        sets = [ngrams("ab")]
        matrix = TokenSetMatrix.from_sets(sets, build_token_vocabulary(sets))
        with pytest.raises(ValueError, match="equal-length"):
            jaccard_pairs(matrix, [0, 0], matrix, [0])
