"""Documentation-site integrity, checkable without the docs toolchain.

CI builds the mkdocs site with ``--strict``; these tests catch the same
classes of breakage locally (where mkdocs may not be installed): autodoc
directives that point at renamed or deleted objects, nav entries for
missing pages, and an API reference that silently drops a public sampler.
The README quickstart is also executed, so the first code a new user
copies cannot rot.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
AUTODOC_RE = re.compile(r"^::: (?P<target>[\w.]+)\s*$", re.MULTILINE)


def _autodoc_targets() -> dict[str, str]:
    """All ``::: dotted.path`` directives across the API pages."""
    targets = {}
    for page in sorted((DOCS / "api").glob("*.md")):
        for match in AUTODOC_RE.finditer(page.read_text()):
            targets[match.group("target")] = page.name
    return targets


def _resolve(dotted: str):
    """Import the object a mkdocstrings directive points at."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attribute in parts[split:]:
            obj = getattr(obj, attribute)
        return obj
    raise ImportError(f"cannot resolve autodoc target {dotted!r}")


def test_docs_tree_is_complete():
    for page in [
        "index.md", "batching.md", "paper_mapping.md",
        "api/core.md", "api/samplers.md", "api/oracle.md", "api/pipeline.md",
    ]:
        assert (DOCS / page).is_file(), f"docs page {page} is missing"
    assert (REPO_ROOT / "mkdocs.yml").is_file()
    assert (REPO_ROOT / "README.md").is_file()


def test_autodoc_targets_resolve():
    targets = _autodoc_targets()
    assert targets, "no autodoc directives found under docs/api/"
    for dotted, page in targets.items():
        obj = _resolve(dotted)
        assert obj is not None, f"{page}: {dotted} resolved to None"
        doc = getattr(obj, "__doc__", None)
        assert doc and doc.strip(), f"{page}: {dotted} has no docstring"


def test_every_public_sampler_is_documented():
    import repro.samplers as samplers

    targets = _autodoc_targets()
    documented = {t.rsplit(".", 1)[-1] for t in targets}
    for name in samplers.__all__:
        assert name in documented, f"sampler {name} missing from API reference"
    assert "OASISSampler" in documented


def test_every_public_oracle_is_documented():
    import repro.oracle as oracle

    documented = {t.rsplit(".", 1)[-1] for t in _autodoc_targets()}
    for name in oracle.__all__:
        assert name in documented, f"oracle {name} missing from API reference"


def test_baseline_samplers_have_parameter_docstrings():
    """The docstring pass: every baseline documents its parameters."""
    from repro.samplers import (
        ImportanceSampler,
        OSSSampler,
        PassiveSampler,
        StratifiedSampler,
    )

    for cls in [ImportanceSampler, OSSSampler, PassiveSampler, StratifiedSampler]:
        doc = cls.__doc__
        assert "Parameters" in doc, f"{cls.__name__} lacks a Parameters section"
        for parameter in ["predictions", "oracle", "alpha", "random_state"]:
            assert parameter in doc, (
                f"{cls.__name__} does not document {parameter!r}"
            )


def test_nav_entries_exist():
    """Every relative page referenced from mkdocs.yml nav must exist."""
    nav_pages = re.findall(r":\s*([\w/]+\.md)\s*$",
                           (REPO_ROOT / "mkdocs.yml").read_text(),
                           re.MULTILINE)
    assert nav_pages, "mkdocs.yml nav is empty"
    for page in nav_pages:
        assert (DOCS / page).is_file(), f"nav references missing page {page}"


def test_readme_quickstart_runs():
    """The first fenced python block in README.md must execute."""
    readme = (REPO_ROOT / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
    assert blocks, "README.md has no python quickstart block"
    namespace: dict = {}
    exec(compile(blocks[0], "README.md", "exec"), namespace)  # noqa: S102
    sampler = namespace["sampler"]
    assert sampler.labels_consumed >= 400
    assert 0.0 <= sampler.estimate <= 1.0
