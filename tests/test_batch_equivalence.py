"""Batch/sequential equivalence of the batched sampling engine.

The batched path (``sample_batch``) must degrade gracefully to the
paper's sequential protocol: a batch of one is *bit-identical* to a
sequential step under the same random state, and larger batches — which
freeze each sampler's proposal for the block — must agree statistically
with the sequential estimates on the same pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OASISSampler
from repro.core.bayes import BetaBernoulliModel
from repro.core.estimators import AISEstimator
from repro.core.stratification import stratify
from repro.oracle import CountingOracle, DeterministicOracle, NoisyOracle
from repro.samplers import (
    ImportanceSampler,
    OSSSampler,
    PassiveSampler,
    StratifiedSampler,
)

SEED = 20260729


def _factories(threshold=0.0):
    return {
        "oasis": lambda p, s, o, r: OASISSampler(
            p, s, o, n_strata=12, threshold=threshold, random_state=r
        ),
        "passive": lambda p, s, o, r: PassiveSampler(p, s, o, random_state=r),
        "stratified": lambda p, s, o, r: StratifiedSampler(
            p, s, o, n_strata=12, random_state=r
        ),
        "importance": lambda p, s, o, r: ImportanceSampler(
            p, s, o, threshold=threshold, random_state=r
        ),
        "oss": lambda p, s, o, r: OSSSampler(
            p, s, o, n_strata=12, random_state=r
        ),
    }


def _build(name, pool, oracle_cls=DeterministicOracle, seed=SEED):
    factory = _factories()[name]
    oracle = oracle_cls(pool["true_labels"])
    return factory(pool["predictions"], pool["scores"], oracle, seed)


@pytest.mark.parametrize("name", sorted(_factories()))
def test_batch_of_one_is_bit_identical(name, imbalanced_pool):
    """``sample_batch(1)`` reproduces ``sample()`` exactly, per draw."""
    n_iterations = 150
    sequential = _build(name, imbalanced_pool)
    sequential.sample(n_iterations)

    batched = _build(name, imbalanced_pool)
    for __ in range(n_iterations):
        batched.sample_batch(1)

    assert batched.sampled_indices == sequential.sampled_indices
    assert batched.budget_history == sequential.budget_history
    np.testing.assert_array_equal(
        np.asarray(batched.history), np.asarray(sequential.history)
    )
    assert batched.queried_labels == sequential.queried_labels
    # The random streams must stay aligned too, not just the outputs.
    assert batched.rng.random() == sequential.rng.random()


def test_batch_of_one_oasis_diagnostics_identical(imbalanced_pool):
    """Diagnostic snapshots also agree between the two paths."""
    def build():
        oracle = DeterministicOracle(imbalanced_pool["true_labels"])
        return OASISSampler(
            imbalanced_pool["predictions"], imbalanced_pool["scores"], oracle,
            n_strata=12, record_diagnostics=True, random_state=SEED,
        )

    sequential = build()
    sequential.sample(60)
    batched = build()
    for __ in range(60):
        batched.sample_batch(1)

    assert len(batched.pi_history) == len(sequential.pi_history)
    for seq_pi, bat_pi in zip(sequential.pi_history, batched.pi_history):
        np.testing.assert_array_equal(seq_pi, bat_pi)
    for seq_v, bat_v in zip(
        sequential.instrumental_history, batched.instrumental_history
    ):
        np.testing.assert_array_equal(seq_v, bat_v)
    np.testing.assert_array_equal(
        sequential.weight_history, batched.weight_history
    )


@pytest.mark.parametrize("name", sorted(_factories()))
def test_batched_estimates_agree_statistically(name, imbalanced_pool):
    """Large batches stay consistent: both paths approach the true F."""
    labels = imbalanced_pool["true_labels"]
    predictions = imbalanced_pool["predictions"]
    tp = float(np.sum(labels * predictions))
    truth = tp / (0.5 * predictions.sum() + 0.5 * labels.sum())

    def mean_estimate(batch_size, n_repeats=5):
        estimates = []
        for repeat in range(n_repeats):
            sampler = _build(name, imbalanced_pool, seed=SEED + repeat)
            sampler.sample_until_budget(600, batch_size=batch_size)
            estimates.append(sampler.estimate)
        return float(np.mean(estimates))

    sequential_mean = mean_estimate(1)
    batched_mean = mean_estimate(64)
    assert abs(batched_mean - truth) < 0.15
    assert abs(batched_mean - sequential_mean) < 0.15


def test_sample_with_batch_size_matches_sample_batch_blocks(imbalanced_pool):
    """``sample(n, batch_size=B)`` is the chunked ``sample_batch`` loop."""
    blocks = _build("oasis", imbalanced_pool)
    blocks.sample_batch(64)
    blocks.sample_batch(64)
    blocks.sample_batch(22)

    chunked = _build("oasis", imbalanced_pool)
    chunked.sample(150, batch_size=64)

    assert chunked.sampled_indices == blocks.sampled_indices
    np.testing.assert_array_equal(
        np.asarray(chunked.history), np.asarray(blocks.history)
    )


def test_sample_until_budget_batched_reaches_budget(imbalanced_pool):
    sampler = _build("oasis", imbalanced_pool)
    budget = 300
    batch_size = 64
    sampler.sample_until_budget(budget, batch_size=batch_size)
    # Exact-budget semantics: the final block is capped at the
    # remaining budget, so batched runs bill exactly `budget` labels.
    assert sampler.labels_consumed == budget
    # Per-draw budget history stays monotone through the blocks.
    assert all(
        a <= b
        for a, b in zip(sampler.budget_history, sampler.budget_history[1:])
    )


def test_batched_history_has_one_entry_per_draw(imbalanced_pool):
    sampler = _build("oasis", imbalanced_pool)
    sampler.sample_batch(37)
    sampler.sample_batch(5)
    assert len(sampler.history) == 42
    assert len(sampler.budget_history) == 42
    assert len(sampler.sampled_indices) == 42


def test_repeated_index_in_batch_gets_one_oracle_query(rng):
    """Cache-aware dedup: a batch re-draw is free (footnote 5)."""
    labels = rng.integers(0, 2, size=50).astype(np.int8)
    oracle = CountingOracle(DeterministicOracle(labels))
    sampler = PassiveSampler(
        np.ones(50, dtype=np.int8), np.linspace(0, 1, 50), oracle,
        random_state=0,
    )
    indices = np.array([3, 7, 3, 3, 9, 7, 11])
    queried, new_mask = sampler._query_labels(indices)
    assert oracle.n_queries == 4
    assert oracle.n_distinct == 4
    np.testing.assert_array_equal(queried, labels[indices])
    # First occurrences of 3, 7, 9, 11 consume budget; repeats do not.
    np.testing.assert_array_equal(
        new_mask, [True, True, False, False, True, False, True]
    )
    # A second batch over the same indices is fully cached.
    queried_again, new_again = sampler._query_labels(indices)
    assert oracle.n_queries == 4
    assert not new_again.any()
    np.testing.assert_array_equal(queried_again, queried)


def test_query_many_consistent_for_stochastic_oracle():
    """Within one batch a randomised oracle cannot contradict itself."""
    oracle = NoisyOracle(probabilities=np.full(20, 0.5), random_state=1)
    indices = np.array([4, 4, 4, 9, 9, 4])
    labels = oracle.query_many(indices)
    assert len(set(labels[indices == 4].tolist())) == 1
    assert len(set(labels[indices == 9].tolist())) == 1


def test_query_many_matches_sequential_stream():
    """Bulk noisy labelling consumes the RNG like a sequential loop."""
    probs = np.linspace(0.05, 0.95, 30)
    sequential = NoisyOracle(probabilities=probs, random_state=7)
    batched = NoisyOracle(probabilities=probs, random_state=7)
    indices = [5, 17, 2, 29]
    expected = [sequential.label(i) for i in indices]
    np.testing.assert_array_equal(batched.query_many(indices), expected)


def test_estimator_update_batch_matches_loop(rng):
    n = 200
    labels = rng.integers(0, 2, size=n)
    predictions = rng.integers(0, 2, size=n)
    weights = rng.random(n) * 3

    looped = AISEstimator(alpha=0.5, track_observations=True)
    loop_history = []
    for l, p, w in zip(labels, predictions, weights):
        looped.update(int(l), int(p), float(w))
        loop_history.append(looped.estimate)

    batched = AISEstimator(alpha=0.5, track_observations=True)
    trajectory = batched.update_batch(labels, predictions, weights)

    np.testing.assert_allclose(trajectory, loop_history, rtol=1e-12)
    assert batched.state() == pytest.approx(looped.state())
    assert batched.n_observations == looped.n_observations
    # Delta-method variance sees the same observation log.
    assert batched.variance_estimate() == pytest.approx(
        looped.variance_estimate()
    )


def test_model_update_batch_matches_loop(rng):
    k = 8
    prior = np.ones((2, k))
    strata = rng.integers(0, k, size=300)
    labels = rng.integers(0, 2, size=300)

    looped = BetaBernoulliModel(prior, decaying_prior=True)
    for s, l in zip(strata, labels):
        looped.update(int(s), int(l))
    batched = BetaBernoulliModel(prior, decaying_prior=True)
    batched.update_batch(strata, labels)

    np.testing.assert_array_equal(batched.gamma, looped.gamma)
    np.testing.assert_array_equal(
        batched.labels_per_stratum, looped.labels_per_stratum
    )


def test_model_update_batch_validates():
    model = BetaBernoulliModel(np.ones((2, 4)))
    with pytest.raises(IndexError):
        model.update_batch([0, 5], [1, 0])
    with pytest.raises(ValueError):
        model.update_batch([0, 1], [1, 2])
    model.update_batch([], [])  # no-op
    np.testing.assert_array_equal(model.labels_per_stratum, np.zeros(4))


def test_sample_in_strata_matches_scalar_draws(rng):
    scores = rng.random(500)
    strata = stratify(scores, 10)
    requested = rng.integers(0, strata.n_strata, size=64)
    drawn = strata.sample_in_strata(requested, rng)
    assert drawn.shape == requested.shape
    np.testing.assert_array_equal(strata.allocations[drawn], requested)
    # A single-entry batch consumes the stream like the scalar method.
    r1 = np.random.default_rng(3)
    r2 = np.random.default_rng(3)
    scalar = strata.sample_in_stratum(4, r1)
    vector = strata.sample_in_strata(np.array([4]), r2)
    assert vector[0] == scalar
    assert r1.random() == r2.random()


def test_oasis_diagnostics_are_owned_copies(imbalanced_pool):
    """Recorded snapshots must not alias live model/proposal state."""
    oracle = DeterministicOracle(imbalanced_pool["true_labels"])
    sampler = OASISSampler(
        imbalanced_pool["predictions"], imbalanced_pool["scores"], oracle,
        n_strata=12, record_diagnostics=True, random_state=SEED,
    )
    sampler.sample(5)
    sampler.sample_batch(16)
    frozen = [pi.copy() for pi in sampler.pi_history]
    model = sampler.model
    for snapshot in sampler.pi_history:
        assert not np.shares_memory(snapshot, model._prior)
        assert not np.shares_memory(snapshot, model._counts)
    # Further sampling must leave recorded snapshots untouched.
    sampler.sample(20)
    for before, after in zip(frozen, sampler.pi_history):
        np.testing.assert_array_equal(before, after)
