"""Unit tests for the benchmark-construction internals."""

import numpy as np
import pytest

from repro.datasets.benchmark import (
    _assemble_pool,
    _required_entities,
    _select_threshold,
    _training_rows,
)
from repro.utils import ensure_rng


class TestSelectThreshold:
    def test_none_target_gives_zero(self):
        assert _select_threshold([1.0, 2.0], [1, 1], None) == 0.0

    def test_no_positives_gives_zero(self):
        assert _select_threshold([1.0, 2.0], [0, 0], 0.5) == 0.0

    def test_full_recall_keeps_all_positives(self):
        scores = np.array([0.2, 0.5, 0.9, -1.0])
        labels = np.array([1, 1, 1, 0])
        threshold = _select_threshold(scores, labels, 1.0)
        kept = (scores[labels == 1] >= threshold).mean()
        assert kept == 1.0

    def test_half_recall_keeps_about_half(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=1000)
        labels = np.ones(1000, dtype=int)
        threshold = _select_threshold(scores, labels, 0.5)
        kept = (scores >= threshold).mean()
        assert kept == pytest.approx(0.5, abs=0.05)

    def test_threshold_never_negative(self):
        # Margins all negative: the threshold clips at 0 so the matcher
        # never accepts below-zero margins just to chase recall.
        scores = np.array([-3.0, -2.0, -1.0])
        labels = np.array([1, 1, 1])
        assert _select_threshold(scores, labels, 1.0) == 0.0


class TestAssemblePool:
    def test_counts(self):
        rng = ensure_rng(0)
        labels = np.zeros(1000, dtype=np.int8)
        labels[:50] = 1
        rows = _assemble_pool(labels, n_matches=20, ratio=10, rng=rng)
        chosen = labels[rows]
        assert chosen.sum() == 20
        assert len(rows) == 20 + 200

    def test_no_duplicates(self):
        rng = ensure_rng(1)
        labels = np.zeros(500, dtype=np.int8)
        labels[:100] = 1
        rows = _assemble_pool(labels, n_matches=30, ratio=3, rng=rng)
        assert len(set(rows.tolist())) == len(rows)

    def test_insufficient_matches_raises(self):
        rng = ensure_rng(0)
        labels = np.zeros(100, dtype=np.int8)
        labels[:5] = 1
        with pytest.raises(RuntimeError, match="matches"):
            _assemble_pool(labels, n_matches=10, ratio=2, rng=rng)

    def test_insufficient_nonmatches_raises(self):
        rng = ensure_rng(0)
        labels = np.ones(100, dtype=np.int8)
        labels[:5] = 0
        with pytest.raises(RuntimeError, match="non-matches"):
            _assemble_pool(labels, n_matches=10, ratio=10, rng=rng)


class TestTrainingRows:
    def test_enriched_in_matches(self):
        rng = ensure_rng(0)
        labels = np.zeros(5000, dtype=np.int8)
        labels[:100] = 1
        rows = _training_rows(labels, np.array([]), rng, n_pos=40, n_neg=400)
        fraction_pos = labels[rows].mean()
        # 40/440 ~ 9% positives vs 2% in the population.
        assert fraction_pos > 0.05

    def test_caps_at_available(self):
        rng = ensure_rng(0)
        labels = np.zeros(100, dtype=np.int8)
        labels[:5] = 1
        rows = _training_rows(labels, np.array([]), rng, n_pos=50, n_neg=50)
        assert labels[rows].sum() == 5


class TestRequiredEntities:
    def test_two_source_covers_pool(self):
        config = {"domain": "products", "overlap": 0.5}
        n = _required_entities(config, n_matches=50, pool_size=50_000)
        # Store size ~ overlap*n + (n - overlap*n)/2; the pair space
        # must exceed the pool with slack.
        shared = 0.5 * n
        store = shared + (n - shared) / 2
        assert store**2 >= 50_000

    def test_dedup_sizing(self):
        config = {"domain": "dedup"}
        n = _required_entities(config, n_matches=300, pool_size=15_000)
        assert n >= 100  # ~3 matching pairs per entity

    def test_match_constraint_binds(self):
        config = {"domain": "products", "overlap": 0.1}
        n = _required_entities(config, n_matches=100, pool_size=100)
        # With 10% overlap we need >= 1300 entities for 130 shared.
        assert n * 0.1 >= 1.2 * 100
