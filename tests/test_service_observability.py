"""End-to-end observability: /metrics, request tracing, WAL recovery
surfacing.

The tentpole claims are empirical here:

* ``GET /metrics`` serves valid Prometheus exposition text from both
  the in-process server and the sharded router, with the full family
  catalogue (WAL fsync latency, per-session draws and CI width, ...).
* Scraping is safe under load: concurrent scrapes during a
  multi-client drive observe monotonically non-decreasing counters and
  internally consistent histograms (``+Inf`` bucket == ``_count``).
* The router's merge is restart-proof: SIGKILL a shard worker and the
  merged counters neither lose what the dead worker counted nor count
  it twice after the replacement replays its WAL.
* Every response carries an ``X-Request-Id`` (client-supplied ids are
  echoed, invalid ones replaced), and client-side errors name the
  request id and retry count.
* ``/healthz`` surfaces WAL torn-tail recoveries with file, offset and
  reason.
"""

from __future__ import annotations

import http.client
import json
import re
import socket
import threading
import time

import numpy as np
import pytest

from test_service_faults import (
    RecoveringClient,
    ShardedService,
    make_pool,
)

from repro.service import SessionManager
from repro.service.client import EvaluationClient, ServiceRequestError
from repro.service.errors import DeadlineExceededError
from repro.service.faults import truncate_file
from repro.service.http import make_server
from repro.utils.metrics import parse_prometheus_text

HEX_ID = re.compile(r"^[0-9a-f]{16}$")

#: Families the acceptance criteria require on a served /metrics page.
REQUIRED_FAMILIES = {
    "oasis_http_requests_total",
    "oasis_request_seconds",
    "oasis_commit_batch_size",
    "oasis_queue_depth",
    "oasis_overloads_total",
    "oasis_wal_append_seconds",
    "oasis_wal_fsync_seconds",
    "oasis_wal_flush_events",
    "oasis_wal_recovered_total",
    "oasis_session_draws_total",
    "oasis_session_labels_total",
    "oasis_dedup_hits_total",
    "oasis_sessions_created_total",
    "oasis_sessions_evicted_total",
    "oasis_sessions_restored_total",
    "oasis_resident_sessions",
    "oasis_session_estimate",
    "oasis_session_ci_width",
    "oasis_session_labels_consumed",
    "oasis_worker_restarts",
}

#: Subset an in-process (non-sharded) server must still expose.
REQUIRED_IN_PROCESS = REQUIRED_FAMILIES - {
    "oasis_request_seconds", "oasis_commit_batch_size",
    "oasis_queue_depth", "oasis_overloads_total", "oasis_worker_restarts",
}


def raw_request(port, method, path, body=None, headers=None):
    """One HTTP exchange returning (status, body-bytes, headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        data = None if body is None else json.dumps(body).encode()
        conn.request(method, path, data,
                     {"Content-Type": "application/json", **(headers or {})})
        response = conn.getresponse()
        return response.status, response.read(), dict(response.headers)
    finally:
        conn.close()


def scrape(port):
    """GET /metrics → (parsed families, raw text, headers)."""
    status, raw, headers = raw_request(port, "GET", "/metrics")
    assert status == 200, raw
    text = raw.decode("utf-8")
    return parse_prometheus_text(text), text, headers


def counter_total(parsed, family):
    """Sum of every labelled sample of one counter family."""
    entry = parsed.get(family)
    if entry is None:
        return 0.0
    return sum(value for (metric, _), value in entry["samples"].items()
               if metric == family)


def assert_histograms_consistent(parsed):
    """Every histogram's +Inf bucket must equal its _count."""
    for family, entry in parsed.items():
        if entry["type"] != "histogram":
            continue
        counts, infs = {}, {}
        for (metric, labels), value in entry["samples"].items():
            bare = tuple(kv for kv in labels if kv[0] != "le")
            if metric == f"{family}_count":
                counts[bare] = value
            elif metric == f"{family}_bucket" and ("le", "+Inf") in labels:
                infs[bare] = value
        assert set(counts) == set(infs), family
        for key, count in counts.items():
            assert infs[key] == count, (
                f"{family}{key}: +Inf bucket {infs[key]} != count {count}")


@pytest.fixture
def local_service(tmp_path):
    """An in-process server plus its manager, over a real socket."""
    manager = SessionManager(tmp_path / "root", capacity=8)
    server = make_server(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield manager, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()


def drive(port, sid, true_labels, *, rounds=3, batch=10, seed=0,
          predictions=None, scores=None):
    client = RecoveringClient(port)
    if predictions is not None:
        client.create(sid, predictions, scores, seed=seed)
    for _ in range(rounds):
        client.run_round(sid, batch, true_labels)


class TestMetricsEndpointInProcess:
    def test_exposition_is_valid_and_complete(self, local_service):
        manager, port = local_service
        predictions, scores, labels = make_pool(seed=3, n=200)
        drive(port, "m1", labels, rounds=4, batch=10,
              predictions=predictions, scores=scores)

        parsed, text, headers = scrape(port)
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        missing = REQUIRED_IN_PROCESS - set(parsed)
        assert not missing, f"families absent from /metrics: {missing}"
        assert len(parsed) >= 12
        assert_histograms_consistent(parsed)

        # The instrumented drive left real observations behind.  Draws
        # are exact (each propose bills batch_size); labels can be
        # fewer, because a re-drawn pool item needs no fresh label.
        assert counter_total(parsed, "oasis_session_draws_total") == 40.0
        labelled = counter_total(parsed, "oasis_session_labels_total")
        assert 0 < labelled <= 40.0
        assert counter_total(parsed, "oasis_sessions_created_total") == 1.0
        fsync = parsed["oasis_wal_fsync_seconds"]["samples"]
        assert fsync[("oasis_wal_fsync_seconds_count", ())] > 0

    def test_per_session_telemetry_gauges(self, local_service):
        manager, port = local_service
        predictions, scores, labels = make_pool(seed=5, n=200)
        drive(port, "tele", labels, rounds=5, batch=10,
              predictions=predictions, scores=scores)
        parsed, _, _ = scrape(port)
        estimate = parsed["oasis_session_estimate"]["samples"]
        assert ("oasis_session_estimate",
                (("session", "tele"),)) in estimate
        ci = parsed["oasis_session_ci_width"]["samples"]
        key = ("oasis_session_ci_width", (("session", "tele"),))
        assert key in ci and ci[key] > 0.0
        consumed = parsed["oasis_session_labels_consumed"]["samples"]
        assert consumed[("oasis_session_labels_consumed",
                         (("session", "tele"),))] > 0


class TestRequestTracing:
    def test_response_carries_minted_request_id(self, local_service):
        _, port = local_service
        status, _, headers = raw_request(port, "GET", "/healthz")
        assert status == 200
        assert HEX_ID.match(headers["X-Request-Id"])

    def test_client_supplied_id_is_echoed(self, local_service):
        _, port = local_service
        status, _, headers = raw_request(
            port, "GET", "/healthz",
            headers={"X-Request-Id": "trace-me.123"})
        assert status == 200
        assert headers["X-Request-Id"] == "trace-me.123"

    def test_invalid_id_is_replaced(self, local_service):
        _, port = local_service
        status, _, headers = raw_request(
            port, "GET", "/healthz",
            headers={"X-Request-Id": "bad id\twith spaces"})
        assert status == 200
        assert HEX_ID.match(headers["X-Request-Id"])

    def test_error_responses_carry_request_id(self, local_service):
        _, port = local_service
        status, _, headers = raw_request(
            port, "GET", "/sessions/nope",
            headers={"X-Request-Id": "lost-session-1"})
        assert status == 404
        assert headers["X-Request-Id"] == "lost-session-1"

    def test_client_http_error_names_request_and_retries(self, local_service):
        _, port = local_service
        with EvaluationClient(f"http://127.0.0.1:{port}") as client:
            with pytest.raises(ServiceRequestError) as excinfo:
                client.status("missing")
        error = excinfo.value
        assert error.status == 404
        assert HEX_ID.match(error.request_id)
        assert error.retries == 0
        assert f"request-id {error.request_id}" in str(error)

    def test_deadline_error_names_request_and_retries(self):
        # A listener that accepts and then never answers: the send
        # succeeds, the read times out, and a non-idempotent request
        # must fail with the request id attached.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            client = EvaluationClient(
                f"http://127.0.0.1:{port}", timeout=0.8, max_retries=1)
            with pytest.raises(DeadlineExceededError) as excinfo:
                client._request("POST", "/sessions/x/propose",
                                {"batch_size": 1}, idempotent=False)
            error = excinfo.value
            assert HEX_ID.match(error.request_id)
            assert error.retries == 0
            assert f"request-id {error.request_id}" in str(error)
        finally:
            listener.close()


class TestHealthzWalRecoveries:
    def test_clean_service_reports_empty_list(self, local_service):
        _, port = local_service
        status, raw, _ = raw_request(port, "GET", "/healthz")
        payload = json.loads(raw)
        assert status == 200
        assert payload["wal"]["recovered"] == []

    def test_torn_tail_recovery_is_surfaced(self, local_service, tmp_path):
        manager, port = local_service
        predictions, scores, labels = make_pool(seed=9, n=150)
        drive(port, "torn", labels, rounds=2, batch=8,
              predictions=predictions, scores=scores)

        manager.evict("torn")
        shards = sorted((tmp_path / "root" / "torn" / "events").iterdir())
        tail = shards[-1]
        truncate_file(tail, keep=len(tail.read_bytes()) // 2)

        # Touching the session restores it through the torn tail ...
        status, _, _ = raw_request(port, "GET", "/sessions/torn")
        assert status == 200
        # ... and /healthz names the recovery.
        _, raw, _ = raw_request(port, "GET", "/healthz")
        (entry,) = json.loads(raw)["wal"]["recovered"]
        assert entry["session"] == "torn"
        assert entry["file"] == tail.name
        assert entry["offset"] >= 0
        assert "torn" in entry["reason"] or "truncated" in entry["reason"]


SHARDS = 2
SESSIONS = 4
ROUNDS = 3
BATCH = 6


class TestShardedScrapes:
    def test_concurrent_scrapes_during_drive(self, tmp_path):
        predictions, scores, labels = make_pool(seed=11, n=150)
        with ShardedService(tmp_path / "root", shards=SHARDS,
                            flush_interval=0.005) as service:
            setup = RecoveringClient(service.port)
            sids = [f"c{index}" for index in range(SESSIONS)]
            for index, sid in enumerate(sids):
                setup.create(sid, predictions, scores, seed=index)

            scrapes: list[dict] = []
            stop = threading.Event()

            def scraper():
                while not stop.is_set():
                    parsed, _, _ = scrape(service.port)
                    assert_histograms_consistent(parsed)
                    scrapes.append(parsed)
                    time.sleep(0.02)

            def driver(sid):
                client = RecoveringClient(service.port)
                for _ in range(ROUNDS):
                    client.run_round(sid, BATCH, labels)

            scrape_thread = threading.Thread(target=scraper)
            scrape_thread.start()
            drivers = [threading.Thread(target=driver, args=(sid,))
                       for sid in sids]
            for thread in drivers:
                thread.start()
            for thread in drivers:
                thread.join()
            parsed, _, _ = scrape(service.port)
            scrapes.append(parsed)
            stop.set()
            scrape_thread.join()

            # Monotonicity: no counter ever dips between scrapes.
            monotone_checked = 0
            for earlier, later in zip(scrapes, scrapes[1:]):
                for family, entry in earlier.items():
                    if entry["type"] != "counter" or family not in later:
                        continue
                    for key, value in entry["samples"].items():
                        if key in later[family]["samples"]:
                            assert later[family]["samples"][key] >= value, (
                                family, key)
                            monotone_checked += 1
            assert monotone_checked > 0

            final = scrapes[-1]
            missing = REQUIRED_FAMILIES - set(final)
            assert not missing, f"families absent from /metrics: {missing}"
            assert len(final) >= 12
            expected = float(SESSIONS * ROUNDS * BATCH)
            assert counter_total(
                final, "oasis_session_draws_total") == expected
            labelled = counter_total(final, "oasis_session_labels_total")
            assert 0 < labelled <= expected

    def test_restart_merge_never_loses_or_double_counts(self, tmp_path):
        import os
        import signal

        predictions, scores, labels = make_pool(seed=13, n=150)
        with ShardedService(tmp_path / "root", shards=SHARDS,
                            flush_interval=0.0) as service:
            client = RecoveringClient(service.port)
            sids = [f"r{index}" for index in range(SESSIONS)]
            for index, sid in enumerate(sids):
                client.create(sid, predictions, scores, seed=index)
            for sid in sids:
                for _ in range(ROUNDS):
                    client.run_round(sid, BATCH, labels)

            expected = float(SESSIONS * ROUNDS * BATCH)
            before, _, _ = scrape(service.port)
            assert counter_total(
                before, "oasis_session_draws_total") == expected

            # Kill every worker between rounds (no requests in flight).
            for pid in service.supervisor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while sum(service.supervisor.restarts) < SHARDS:
                assert time.monotonic() < deadline, "workers never restarted"
                time.sleep(0.05)

            # Banked, not lost: the replacements have fresh registries
            # and no resident sessions, yet the merged totals hold.
            after_restart, _, _ = scrape(service.port)
            assert counter_total(
                after_restart, "oasis_session_draws_total") == expected
            restarts = after_restart["oasis_worker_restarts"]["samples"]
            assert sum(restarts.values()) >= SHARDS

            # Not double-counted either: WAL replay re-draws every
            # committed batch without touching the counters, so one
            # more driven round adds exactly one round's draws.
            for sid in sids:
                client.run_round(sid, BATCH, labels)
            final, _, _ = scrape(service.port)
            assert counter_total(
                final, "oasis_session_draws_total"
            ) == expected + SESSIONS * BATCH
            assert counter_total(
                final, "oasis_sessions_restored_total") >= float(SESSIONS)

    def test_sharded_healthz_aggregates_wal_recoveries(self, tmp_path):
        with ShardedService(tmp_path / "root", shards=SHARDS) as service:
            status, raw, headers = raw_request(
                service.port, "GET", "/healthz")
            assert status == 200
            payload = json.loads(raw)
            assert payload["wal"]["recovered"] == []
            assert HEX_ID.match(headers["X-Request-Id"])

    def test_history_endpoint_round_trips(self, tmp_path):
        predictions, scores, labels = make_pool(seed=17, n=150)
        with ShardedService(tmp_path / "root", shards=SHARDS) as service:
            with EvaluationClient(
                    f"http://127.0.0.1:{service.port}") as client:
                client.create_session(predictions, scores, sampler="oasis",
                                      seed=4, session_id="h1")
                recovering = RecoveringClient(service.port)
                for _ in range(ROUNDS):
                    recovering.run_round("h1", BATCH, labels)
                history = client.history("h1")
        assert history["session_id"] == "h1"
        assert len(history["history"]) == len(history["budget_history"])
        assert history["labels_consumed"] > 0
        assert history["budget_history"][-1] == history["labels_consumed"]
        assert history["estimate"] == pytest.approx(history["history"][-1])
