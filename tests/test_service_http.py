"""The JSON-over-HTTP front-end, driven by real sockets.

Covers the endpoint surface, error mapping and concurrent clients
against an in-process server, plus the full CI smoke scenario: a
server subprocess killed with SIGKILL mid-session and restarted from
its journal root, after which the finished session's estimate must
equal the in-process oracle-driven run at the same seed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.specs import SAMPLER_KINDS
from repro.oracle import DeterministicOracle
from repro.service import SessionManager
from repro.service.http import make_server

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_pool(seed=0, n=300):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.1).astype(np.int8)
    scores = rng.normal(size=n) + 2.5 * labels
    predictions = (scores > 0.5).astype(np.int8)
    return predictions, scores, labels


def call(port, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def server(tmp_path):
    manager = SessionManager(tmp_path / "root", capacity=8)
    instance = make_server(manager, port=0)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance.server_address[1], manager
    instance.shutdown()
    instance.server_close()


def create_session(port, predictions, scores, session_id, seed=7, **extra):
    body = {
        "predictions": predictions.tolist(),
        "scores": scores.tolist(),
        "sampler": "oasis",
        "sampler_kwargs": {"n_strata": 8},
        "seed": seed,
        "session_id": session_id,
    }
    body.update(extra)
    return call(port, "POST", "/sessions", body)


def drive_http(port, session_id, labels, batches):
    for batch in batches:
        status, proposal = call(port, "POST", f"/sessions/{session_id}/propose",
                                {"batch_size": batch})
        assert status == 200, proposal
        answers = [int(labels[i]) for i in proposal["pending"]]
        status, result = call(port, "POST", f"/sessions/{session_id}/ingest",
                              {"ticket": proposal["ticket"], "labels": answers})
        assert status == 200, result
    return result


class TestEndpoints:
    def test_healthz(self, server):
        port, __ = server
        status, payload = call(port, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_full_session_lifecycle_matches_in_process_run(self, server):
        port, __ = server
        predictions, scores, labels = make_pool()
        status, created = create_session(port, predictions, scores, "lifecycle")
        assert status == 200 and created["session_id"] == "lifecycle"

        batches = [16, 16, 16]
        result = drive_http(port, "lifecycle", labels, batches)

        sampler = SAMPLER_KINDS["oasis"](
            predictions, scores, DeterministicOracle(labels),
            random_state=7, n_strata=8)
        for batch in batches:
            sampler.sample_batch(batch)
        assert result["estimate"] == sampler.estimate
        assert result["labels_consumed"] == sampler.labels_consumed

        status, estimate = call(port, "GET", "/sessions/lifecycle/estimate")
        assert status == 200
        assert estimate["estimate"] == sampler.estimate
        assert estimate["precision"] == sampler.precision_estimate

        status, payload = call(port, "POST", "/sessions/lifecycle/checkpoint")
        assert status == 200 and payload["seq"] > 0

        status, payload = call(port, "GET", "/sessions")
        assert any(s["session_id"] == "lifecycle" for s in payload["sessions"])

        status, payload = call(port, "DELETE", "/sessions/lifecycle")
        assert status == 200 and payload["closed"]

    def test_error_mapping(self, server):
        port, __ = server
        predictions, scores, __labels = make_pool()
        assert call(port, "GET", "/sessions/ghost")[0] == 404
        assert call(port, "GET", "/nonsense")[0] == 404
        # create without required fields -> 400
        assert call(port, "POST", "/sessions", {"scores": [1.0]})[0] == 400
        # malformed JSON body -> 400
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/sessions", data=b"{not json",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400

        create_session(port, predictions, scores, "errs")
        call(port, "POST", "/sessions/errs/propose", {"batch_size": 4})
        # double propose -> 409
        assert call(port, "POST", "/sessions/errs/propose",
                    {"batch_size": 4})[0] == 409
        # bad ticket -> 409
        assert call(port, "POST", "/sessions/errs/ingest",
                    {"ticket": 99, "labels": []})[0] == 409
        # bad batch size -> 400
        create_session(port, predictions, scores, "errs2")
        assert call(port, "POST", "/sessions/errs2/propose",
                    {"batch_size": 0})[0] == 400

    def test_capacity_maps_to_503(self, tmp_path):
        manager = SessionManager(None, capacity=1)  # memory-only: no eviction
        instance = make_server(manager, port=0)
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            port = instance.server_address[1]
            predictions, scores, __ = make_pool(n=50)
            assert create_session(port, predictions, scores, "one")[0] == 200
            assert create_session(port, predictions, scores, "two")[0] == 503
        finally:
            instance.shutdown()
            instance.server_close()

    def test_concurrent_clients(self, server):
        """Multiple clients on distinct sessions, in parallel threads."""
        port, __ = server
        predictions, scores, labels = make_pool()
        ids = [f"client-{i}" for i in range(4)]
        for session_id in ids:
            status, __payload = create_session(port, predictions, scores,
                                               session_id, seed=13)
            assert status == 200
        results = {}
        errors = []

        def client(session_id):
            try:
                results[session_id] = drive_http(
                    port, session_id, labels, [8] * 8)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((session_id, exc))

        threads = [threading.Thread(target=client, args=(sid,)) for sid in ids]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # same seed, same labels: all clients converge to one trajectory
        estimates = {r["estimate"] for r in results.values()}
        consumed = {r["labels_consumed"] for r in results.values()}
        assert len(estimates) == 1 and len(consumed) == 1


class TestKillRestartSmoke:
    """The CI smoke scenario against a real server process."""

    @staticmethod
    def start_server(root):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "serve",
             "--port", "0", "--root", str(root)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        line = process.stdout.readline()
        assert "http://" in line, line
        port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
        # wait for readiness
        for __ in range(100):
            try:
                status, __payload = call(port, "GET", "/healthz")
                if status == 200:
                    break
            except OSError:
                time.sleep(0.05)
        return process, port

    def test_kill9_restart_resumes_and_matches_in_process(self, tmp_path):
        root = tmp_path / "service-root"
        predictions, scores, labels = make_pool(5)
        batches_before, batches_after = [16, 16], [16, 16]

        process, port = self.start_server(root)
        try:
            status, __payload = create_session(
                port, predictions, scores, "smoke", seed=21)
            assert status == 200
            drive_http(port, "smoke", labels, batches_before)
            # leave a proposal in flight, then SIGKILL the server
            status, outstanding = call(
                port, "POST", "/sessions/smoke/propose", {"batch_size": 16})
            assert status == 200
        finally:
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
            process.stdout.close()

        process, port = self.start_server(root)
        try:
            # the restarted server restores the session from its journal,
            # outstanding proposal included
            status, state = call(port, "GET", "/sessions/smoke")
            assert status == 200
            assert state["outstanding"]["ticket"] == outstanding["ticket"]
            assert state["outstanding"]["pending"] == outstanding["pending"]
            answers = [int(labels[i]) for i in outstanding["pending"]]
            status, __payload = call(
                port, "POST", "/sessions/smoke/ingest",
                {"ticket": outstanding["ticket"], "labels": answers})
            assert status == 200
            result = drive_http(port, "smoke", labels, batches_after)
        finally:
            process.terminate()
            process.wait(timeout=30)
            process.stdout.close()

        sampler = SAMPLER_KINDS["oasis"](
            predictions, scores, DeterministicOracle(labels),
            random_state=21, n_strata=8)
        for batch in batches_before + [16] + batches_after:
            sampler.sample_batch(batch)
        assert result["estimate"] == sampler.estimate
        assert result["labels_consumed"] == sampler.labels_consumed
