"""Tests for the OASIS sampler (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import OASISSampler, csf_stratify
from repro.measures import pool_performance
from repro.oracle import CountingOracle, DeterministicOracle


@pytest.fixture
def pool(imbalanced_pool):
    return imbalanced_pool


def make_sampler(pool, seed=0, **kwargs):
    oracle = DeterministicOracle(pool["true_labels"])
    return OASISSampler(
        pool["predictions"], pool["scores"], oracle, random_state=seed, **kwargs
    )


class TestConstruction:
    def test_strata_built_from_scores(self, pool):
        sampler = make_sampler(pool, n_strata=25)
        assert 1 <= sampler.n_strata <= 25

    def test_prebuilt_strata_reused(self, pool):
        strata = csf_stratify(pool["scores"], 12)
        sampler = make_sampler(pool, strata=strata)
        assert sampler.strata is strata

    def test_prebuilt_strata_size_checked(self, pool):
        strata = csf_stratify(pool["scores"][:-10], 12)
        with pytest.raises(ValueError, match="cover"):
            make_sampler(pool, strata=strata)

    def test_epsilon_validation(self, pool):
        with pytest.raises(ValueError, match="epsilon"):
            make_sampler(pool, epsilon=0.0)
        with pytest.raises(ValueError, match="epsilon"):
            make_sampler(pool, epsilon=1.5)

    def test_alpha_validation(self, pool):
        with pytest.raises(ValueError, match="alpha"):
            make_sampler(pool, alpha=-0.2)

    def test_empty_pool_rejected(self):
        oracle = DeterministicOracle([1])
        with pytest.raises(ValueError, match="non-empty"):
            OASISSampler(np.array([]), np.array([]), oracle)

    def test_non_binary_predictions_rejected(self, pool):
        oracle = DeterministicOracle(pool["true_labels"])
        bad = pool["predictions"].astype(int) + 1
        with pytest.raises(ValueError, match="binary"):
            OASISSampler(bad, pool["scores"], oracle)

    def test_initial_f_from_scores(self, pool):
        sampler = make_sampler(pool)
        assert 0.0 <= sampler.initial_f_measure <= 1.0


class TestSamplingMechanics:
    def test_instrumental_is_distribution(self, pool):
        sampler = make_sampler(pool)
        v = sampler.instrumental_distribution()
        assert v.sum() == pytest.approx(1.0)
        assert np.all(v > 0)  # epsilon-greedy: strictly positive

    def test_epsilon_floor_on_instrumental(self, pool):
        sampler = make_sampler(pool, epsilon=0.1)
        v = sampler.instrumental_distribution()
        floor = 0.1 * sampler.strata.weights
        assert np.all(v >= floor - 1e-12)

    def test_histories_aligned(self, pool):
        sampler = make_sampler(pool)
        sampler.sample(50)
        assert len(sampler.history) == 50
        assert len(sampler.budget_history) == 50
        assert len(sampler.sampled_indices) == 50

    def test_budget_monotone_nondecreasing(self, pool):
        sampler = make_sampler(pool)
        sampler.sample(100)
        budgets = np.asarray(sampler.budget_history)
        assert np.all(np.diff(budgets) >= 0)

    def test_label_caching_budget_less_than_iterations(self, pool):
        sampler = make_sampler(pool)
        sampler.sample(400)
        # With replacement, some redraws must have hit the cache on
        # this heavily-exploited pool.
        assert sampler.labels_consumed < 400

    def test_oracle_queried_once_per_item(self, pool):
        oracle = CountingOracle(DeterministicOracle(pool["true_labels"]))
        sampler = OASISSampler(
            pool["predictions"], pool["scores"], oracle, random_state=0
        )
        sampler.sample(300)
        assert oracle.n_queries == oracle.n_distinct == sampler.labels_consumed

    def test_sample_until_budget_reaches_target(self, pool):
        sampler = make_sampler(pool)
        sampler.sample_until_budget(80)
        assert sampler.labels_consumed >= 80

    def test_sample_until_budget_validation(self, pool):
        sampler = make_sampler(pool)
        with pytest.raises(ValueError, match="budget"):
            sampler.sample_until_budget(0)

    def test_estimate_at_budgets(self, pool):
        sampler = make_sampler(pool)
        sampler.sample_until_budget(60)
        values = sampler.estimate_at_budgets([10, 30, 60])
        assert values.shape == (3,)
        # The last estimate matches the sampler's final state.
        assert values[-1] == pytest.approx(sampler.estimate, abs=1e-12)

    def test_posterior_updates_with_labels(self, pool):
        sampler = make_sampler(pool)
        before = sampler.pi_estimate.copy()
        sampler.sample(200)
        after = sampler.pi_estimate
        assert not np.allclose(before, after)

    def test_diagnostics_recorded_when_enabled(self, pool):
        sampler = make_sampler(pool, record_diagnostics=True)
        sampler.sample(20)
        assert len(sampler.pi_history) == 20
        assert len(sampler.instrumental_history) == 20
        assert len(sampler.weight_history) == 20

    def test_diagnostics_off_by_default(self, pool):
        sampler = make_sampler(pool)
        sampler.sample(20)
        assert sampler.pi_history == []

    def test_importance_weights_bounded(self, pool):
        # p/q <= 1/epsilon, the bound the consistency proof relies on.
        epsilon = 0.05
        sampler = make_sampler(pool, epsilon=epsilon, record_diagnostics=True)
        sampler.sample(300)
        assert max(sampler.weight_history) <= 1.0 / epsilon + 1e-9

    def test_reproducible_given_seed(self, pool):
        a = make_sampler(pool, seed=9)
        b = make_sampler(pool, seed=9)
        a.sample(100)
        b.sample(100)
        assert a.sampled_indices == b.sampled_indices
        np.testing.assert_allclose(a.history, b.history, equal_nan=True)


class TestStatisticalBehaviour:
    def test_converges_to_true_f(self, pool):
        true_f = pool_performance(pool["true_labels"], pool["predictions"])[
            "f_measure"
        ]
        errors = []
        for seed in range(5):
            sampler = make_sampler(pool, seed=seed)
            sampler.sample_until_budget(1500)
            errors.append(abs(sampler.estimate - true_f))
        assert np.mean(errors) < 0.06

    def test_full_pool_labels_give_exact_f(self, pool):
        # Label budget = pool size: the weighted estimate must agree
        # with the exhaustive F-measure (consistency end point).
        n = len(pool["scores"])
        true_f = pool_performance(pool["true_labels"], pool["predictions"])[
            "f_measure"
        ]
        sampler = make_sampler(pool, seed=1, epsilon=0.5)
        sampler.sample_until_budget(n, max_iterations=400_000)
        if sampler.labels_consumed == n:
            assert sampler.estimate == pytest.approx(true_f, abs=0.05)

    def test_beats_passive_at_small_budget(self, pool):
        from repro.samplers import PassiveSampler

        true_f = pool_performance(pool["true_labels"], pool["predictions"])[
            "f_measure"
        ]
        oasis_err, passive_err = [], []
        for seed in range(8):
            s = make_sampler(pool, seed=seed)
            s.sample_until_budget(200)
            oasis_err.append(abs(s.estimate - true_f))
            p = PassiveSampler(
                pool["predictions"],
                pool["scores"],
                DeterministicOracle(pool["true_labels"]),
                random_state=seed,
            )
            p.sample_until_budget(200)
            if not np.isnan(p.estimate):
                passive_err.append(abs(p.estimate - true_f))
        # Passive at 200 labels on a 1:125 imbalanced pool is noisy or
        # undefined; OASIS should clearly win on average.
        assert np.mean(oasis_err) < (np.mean(passive_err) if passive_err else 1.0)

    def test_precision_recall_estimates_converge(self, pool):
        perf = pool_performance(pool["true_labels"], pool["predictions"])
        sampler = make_sampler(pool, seed=3)
        sampler.sample_until_budget(1500)
        assert sampler.precision_estimate == pytest.approx(
            perf["precision"], abs=0.12
        )
        assert sampler.recall_estimate == pytest.approx(perf["recall"], abs=0.12)

    def test_epsilon_one_behaves_like_passive(self, pool):
        # epsilon = 1 samples strata by weight and items uniformly:
        # exactly the underlying distribution.
        sampler = make_sampler(pool, epsilon=1.0, record_diagnostics=True)
        sampler.sample(50)
        np.testing.assert_allclose(
            sampler.instrumental_history[0], sampler.strata.weights
        )
        assert all(w == pytest.approx(1.0) for w in sampler.weight_history)

    def test_works_with_calibrated_scores(self, pool):
        calibrated = 1.0 / (1.0 + np.exp(-pool["scores"]))
        oracle = DeterministicOracle(pool["true_labels"])
        sampler = OASISSampler(
            pool["predictions"], calibrated, oracle, random_state=0
        )
        sampler.sample_until_budget(300)
        assert 0.0 <= sampler.estimate <= 1.0
