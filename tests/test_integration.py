"""End-to-end integration tests across the whole library.

Each test exercises the full path a user would take: generate data,
run the ER pipeline, evaluate with a sampler, and check the estimate
against exhaustive ground truth.
"""

import numpy as np
import pytest

from repro import (
    DeterministicOracle,
    ImportanceSampler,
    NoisyOracle,
    OASISSampler,
    PassiveSampler,
    StratifiedSampler,
    load_benchmark,
    pool_performance,
)
from repro.classifiers import LogisticRegression, PlattCalibrator
from repro.datasets import generate_product_pair
from repro.pipeline import (
    ERPipeline,
    FieldSpec,
    MatchRelation,
    PairFeatureExtractor,
    cross_product_pairs,
)


class TestFullPipelineToEvaluation:
    """Generate -> pipeline -> sample -> estimate, from raw records."""

    @pytest.fixture(scope="class")
    def resolved(self):
        store_a, store_b = generate_product_pair(
            120, overlap=0.4, noise_level=1.0, random_state=7
        )
        pairs = cross_product_pairs(len(store_a), len(store_b))
        relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)

        extractor = PairFeatureExtractor(
            [
                FieldSpec("name", "short_text"),
                FieldSpec("description", "long_text"),
                FieldSpec("price", "numeric"),
            ]
        )
        classifier = PlattCalibrator(LogisticRegression(), random_state=0)
        pipeline = ERPipeline(extractor, classifier, threshold=0.0)

        rng = np.random.default_rng(0)
        match_rows = np.nonzero(relation.labels == 1)[0]
        nonmatch_rows = rng.choice(
            np.nonzero(relation.labels == 0)[0], size=400, replace=False
        )
        train = np.concatenate([match_rows[:30], nonmatch_rows])
        pipeline.fit(store_a, store_b, pairs[train], relation.labels[train])

        out = pipeline.resolve(pairs)
        return {
            "scores": out["scores"],
            "predictions": out["predictions"],
            "labels": relation.labels,
        }

    def test_pipeline_produces_usable_scores(self, resolved):
        assert np.isfinite(resolved["scores"]).all()
        assert resolved["predictions"].sum() > 0

    def test_oasis_estimates_pipeline_f(self, resolved):
        truth = pool_performance(resolved["labels"], resolved["predictions"])
        errs = []
        for seed in range(3):
            sampler = OASISSampler(
                resolved["predictions"],
                resolved["scores"],
                DeterministicOracle(resolved["labels"]),
                random_state=seed,
            )
            sampler.sample_until_budget(800)
            errs.append(abs(sampler.estimate - truth["f_measure"]))
        assert np.mean(errs) < 0.12


class TestBenchmarkEvaluation:
    """All four samplers on the prebuilt benchmark pool."""

    @pytest.mark.parametrize(
        "sampler_cls",
        [OASISSampler, PassiveSampler, StratifiedSampler, ImportanceSampler],
    )
    def test_sampler_runs_on_benchmark(self, tiny_abt_buy, sampler_cls):
        pool = tiny_abt_buy
        sampler = sampler_cls(
            pool.predictions,
            pool.scores,
            DeterministicOracle(pool.true_labels),
            random_state=0,
        )
        sampler.sample_until_budget(150)
        assert sampler.labels_consumed >= 150 or np.isnan(sampler.estimate) is False

    def test_oasis_accuracy_on_benchmark(self, tiny_abt_buy):
        pool = tiny_abt_buy
        true_f = pool.performance["f_measure"]
        errs = []
        for seed in range(5):
            sampler = OASISSampler(
                pool.predictions,
                pool.scores_calibrated,
                DeterministicOracle(pool.true_labels),
                threshold=pool.threshold,
                random_state=seed,
            )
            sampler.sample_until_budget(400)
            errs.append(abs(sampler.estimate - true_f))
        assert np.mean(errs) < 0.08

    def test_balanced_pool_all_methods_work(self, tiny_tweets):
        pool = tiny_tweets
        true_f = pool.performance["f_measure"]
        for cls in [OASISSampler, PassiveSampler, ImportanceSampler]:
            sampler = cls(
                pool.predictions,
                pool.scores,
                DeterministicOracle(pool.true_labels),
                random_state=0,
            )
            sampler.sample_until_budget(400)
            assert abs(sampler.estimate - true_f) < 0.1


class TestNoisyOracleEvaluation:
    """The randomised-oracle regime the theory covers."""

    def test_oasis_with_noisy_oracle(self, tiny_abt_buy):
        pool = tiny_abt_buy
        # The target under a noisy oracle is the F computed against the
        # oracle *probabilities*, not the clean labels; with small flip
        # probability it stays near the clean value.
        sampler = OASISSampler(
            pool.predictions,
            pool.scores,
            NoisyOracle(
                true_labels=pool.true_labels, flip_prob=0.02, random_state=0
            ),
            random_state=0,
        )
        sampler.sample_until_budget(400)
        assert 0.0 <= sampler.estimate <= 1.0

    def test_estimates_bounded_under_heavy_noise(self, tiny_abt_buy):
        pool = tiny_abt_buy
        sampler = OASISSampler(
            pool.predictions,
            pool.scores,
            NoisyOracle(
                true_labels=pool.true_labels, flip_prob=0.3, random_state=1
            ),
            random_state=1,
        )
        sampler.sample_until_budget(300)
        assert 0.0 <= sampler.estimate <= 1.0


class TestPublicAPI:
    def test_version_exposed(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolvable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self, tiny_abt_buy):
        # The README quickstart, verbatim in spirit.
        pool = tiny_abt_buy
        oracle = DeterministicOracle(pool.true_labels)
        sampler = OASISSampler(
            pool.predictions, pool.scores, oracle, random_state=0
        )
        sampler.sample_until_budget(100)
        assert np.isfinite(sampler.estimate)
        assert sampler.labels_consumed >= 100
