"""Tests for the named benchmark pools (Tables 1-2 machinery)."""

import numpy as np
import pytest

from repro.datasets import BENCHMARK_NAMES, dataset_summary, load_benchmark
from repro.measures import pool_performance


class TestLoadBenchmark:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("nope")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_benchmark("abt_buy", scale="huge")

    def test_all_names_listed(self):
        assert set(BENCHMARK_NAMES) == {
            "amazon_google",
            "restaurant",
            "dblp_acm",
            "abt_buy",
            "cora",
            "tweets100k",
        }

    def test_tiny_pool_structure(self, tiny_abt_buy):
        pool = tiny_abt_buy
        n = len(pool)
        assert pool.scores.shape == (n,)
        assert pool.scores_calibrated.shape == (n,)
        assert pool.predictions.shape == (n,)
        assert pool.true_labels.shape == (n,)
        assert pool.pairs.shape == (n, 2)
        assert pool.features.shape[0] == n

    def test_match_count_and_ratio(self, tiny_abt_buy):
        assert tiny_abt_buy.n_matches == 15
        assert tiny_abt_buy.imbalance_ratio == pytest.approx(150.0)

    def test_calibrated_scores_are_probabilities(self, tiny_abt_buy):
        cal = tiny_abt_buy.scores_calibrated
        assert np.all((cal >= 0) & (cal <= 1))

    def test_predictions_follow_threshold(self, tiny_abt_buy):
        pool = tiny_abt_buy
        np.testing.assert_array_equal(
            pool.predictions, (pool.scores >= pool.threshold).astype(np.int8)
        )

    def test_performance_matches_recomputation(self, tiny_abt_buy):
        pool = tiny_abt_buy
        perf = pool_performance(pool.true_labels, pool.predictions)
        assert pool.performance["f_measure"] == pytest.approx(perf["f_measure"])

    def test_scores_informative(self, tiny_abt_buy):
        pool = tiny_abt_buy
        mean_match = pool.scores[pool.true_labels == 1].mean()
        mean_nonmatch = pool.scores[pool.true_labels == 0].mean()
        assert mean_match > mean_nonmatch

    def test_deterministic_given_seed(self):
        a = load_benchmark("restaurant", scale="tiny", random_state=11)
        b = load_benchmark("restaurant", scale="tiny", random_state=11)
        np.testing.assert_allclose(a.scores, b.scores)
        np.testing.assert_array_equal(a.true_labels, b.true_labels)

    def test_different_seeds_differ(self):
        a = load_benchmark("restaurant", scale="tiny", random_state=1)
        b = load_benchmark("restaurant", scale="tiny", random_state=2)
        assert not np.array_equal(a.scores, b.scores)

    def test_tweets_pool_balanced(self, tiny_tweets):
        assert tiny_tweets.imbalance_ratio == pytest.approx(1.0, abs=0.15)
        assert tiny_tweets.pairs is None

    def test_cora_dedup_pairs_valid(self, tiny_cora):
        # Dedup pairs must be strictly upper-triangular (i < j).
        assert np.all(tiny_cora.pairs[:, 0] < tiny_cora.pairs[:, 1])

    def test_custom_classifier(self):
        from repro.classifiers import LogisticRegression

        pool = load_benchmark(
            "abt_buy", scale="tiny", classifier=LogisticRegression(), random_state=0
        )
        assert len(pool) > 0
        assert np.isfinite(pool.scores).all()


class TestDatasetSummary:
    def test_summary_keys(self, tiny_abt_buy):
        row = dataset_summary(tiny_abt_buy)
        assert set(row) == {
            "dataset",
            "size",
            "imbalance_ratio",
            "n_matches",
            "precision",
            "recall",
            "f_measure",
        }

    def test_summary_values(self, tiny_abt_buy):
        row = dataset_summary(tiny_abt_buy)
        assert row["dataset"] == "abt_buy"
        assert row["size"] == len(tiny_abt_buy)
        assert row["n_matches"] == tiny_abt_buy.n_matches
