"""atomic_write_text: the durability primitive under every checkpoint."""

from __future__ import annotations

import threading

import pytest

from repro.utils import atomic_write_bytes, atomic_write_text, fsync_directory


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "out.json"
        assert atomic_write_text(target, "hello") == target
        assert target.read_text() == "hello"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "content")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failure_cleans_up_temp_file(self, tmp_path):
        with pytest.raises((FileNotFoundError, NotADirectoryError, OSError)):
            atomic_write_text(tmp_path / "missing-dir" / "out.json", "x")
        assert list(tmp_path.iterdir()) == []

    def test_temp_names_invisible_to_shard_globs(self, tmp_path, monkeypatch):
        """A crash mid-write must not surface a half-shard to readers.

        TrialStore and SessionWAL discover their shards with
        ``*.json`` globs / name-pattern scans; the staging file must
        never match.
        """
        captured = {}
        import repro.utils.io as io_mod
        real_replace = io_mod.os.replace

        def spy(src, dst):
            captured["tmp"] = str(src)
            return real_replace(src, dst)

        monkeypatch.setattr(io_mod.os, "replace", spy)
        atomic_write_text(tmp_path / "shard.json", "{}")
        tmp_name = captured["tmp"].rsplit("/", 1)[-1]
        assert tmp_name.endswith(".tmp") and tmp_name.startswith(".")

    def test_concurrent_writers_never_tear(self, tmp_path):
        """N threads hammering one path: every read sees a full payload."""
        target = tmp_path / "contended.json"
        payloads = [str(i) * 2048 for i in range(8)]
        errors = []

        def writer(payload):
            try:
                for __ in range(20):
                    atomic_write_text(target, payload)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        while any(t.is_alive() for t in threads):
            if target.exists():
                content = target.read_text()
                assert content in payloads  # complete, never interleaved
        for t in threads:
            t.join()
        assert not errors
        assert [p.name for p in tmp_path.iterdir()] == ["contended.json"]


class TestAtomicWriteBytes:
    def test_writes_raw_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        data = bytes(range(256))
        assert atomic_write_bytes(target, data) == target
        assert target.read_bytes() == data

    def test_text_variant_delegates(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "héllo")
        assert target.read_bytes() == "héllo".encode("utf-8")

    def test_fsync_dir_flag_syncs_parent(self, tmp_path, monkeypatch):
        import repro.utils.io as io_module

        synced = []
        monkeypatch.setattr(io_module, "fsync_directory",
                            lambda path: synced.append(path))
        atomic_write_bytes(tmp_path / "a.bin", b"x")
        assert synced == []  # opt-in only
        atomic_write_bytes(tmp_path / "b.bin", b"x", fsync_dir=True)
        assert synced == [tmp_path]


class TestFsyncDirectory:
    def test_syncs_a_real_directory(self, tmp_path):
        fsync_directory(tmp_path)  # must not raise

    def test_missing_directory_is_a_noop(self, tmp_path):
        # Durability hardening must never turn into a crash on exotic
        # filesystems that refuse O_RDONLY directory handles — the
        # helper swallows OSError, including ENOENT.
        fsync_directory(tmp_path / "nowhere")
