"""Integrity layer: CRC32C frames, torn-tail recovery, exactly-once keys.

The claims under test, in order of appearance:

* the pure-Python CRC32C matches the published check vectors;
* every WAL shard is a checksummed frame, and restore distinguishes a
  **torn tail** (recoverable — the interrupted write was never
  acknowledged, so dropping it breaks no promise) from **mid-log
  damage** (a hard :class:`~repro.utils.CorruptStateError` naming file
  and offset — silently serving a shortened history would be worse
  than failing);
* pre-frame journals (the committed fixtures, live deployments from
  before the format change) still restore;
* session manifests carry a digest sidecar and fail loudly when the
  bytes rot;
* idempotency keys make propose/ingest retries exact-once, across
  replay, checkpoints and eviction;
* a full journal volume surfaces as the retryable
  :class:`~repro.service.errors.StorageFullError` with state unchanged
  — degradation, never damage;
* chunk-store manifests record per-chunk SHA-256 digests and loads
  verify them.
"""

from __future__ import annotations

import errno
import json
import os

import numpy as np
import pytest

from repro.pipeline.records import Record
from repro.pipeline.storage import ChunkedRecordStore
from repro.service.errors import StorageFullError
from repro.service.faults import flip_bits, truncate_file
from repro.service.session import DEDUP_WINDOW, EvaluationSession
from repro.service.wal import GroupCommitWAL, SessionWAL
from repro.utils import CorruptStateError, crc32c, file_digest


# -- crc32c check vectors --------------------------------------------------

def test_crc32c_check_vectors():
    # The iSCSI (Castagnoli) polynomial's published vectors.
    assert crc32c(b"") == 0
    assert crc32c(b"123456789") == 0xE3069283
    assert crc32c(b"The quick brown fox jumps over the lazy dog") == 0x22620404


def test_crc32c_streaming_composition():
    data = os.urandom(1024)
    assert crc32c(data) == crc32c(data[300:], crc32c(data[:300]))


def test_crc32c_vector_path_matches_serial():
    # Inputs of a kilobyte and up take the NumPy block-gather path;
    # pin it to the byte-at-a-time loop across the threshold, block
    # boundaries, ragged tails and non-zero seeds.
    from repro.utils.integrity import _BLOCK, _crc_serial

    def serial(data, value=0):
        crc = _crc_serial((~value) & 0xFFFFFFFF, memoryview(data), 0,
                          len(data))
        return (~crc) & 0xFFFFFFFF

    for length in (_BLOCK - 1, _BLOCK, _BLOCK + 1, 3 * _BLOCK,
                   3 * _BLOCK + 17, 8 * _BLOCK + 1023):
        data = os.urandom(length)
        assert crc32c(data) == serial(data), length
        seed = crc32c(data[:97])
        assert crc32c(data, seed) == serial(data, seed), length
        cut = length // 2
        assert crc32c(data[cut:], crc32c(data[:cut])) == crc32c(data), length


# -- WAL frame verification ------------------------------------------------

def make_session(directory, *, codec="json", rounds=3, seed=9,
                 wal_factory=None):
    rng = np.random.default_rng(2)
    labels = (rng.random(60) < 0.4).astype(int)
    scores = rng.normal(size=60) + labels
    predictions = (scores > 0.4).astype(int)
    factory = wal_factory or (lambda d: SessionWAL(d, codec=codec))
    session = EvaluationSession.create(
        predictions.tolist(), scores.tolist(), sampler="oasis", seed=seed,
        directory=directory, wal_factory=factory)
    for _ in range(rounds):
        proposal = session.propose(5)
        session.ingest(proposal["ticket"],
                       [int(labels[i]) for i in proposal["pending"]])
    return session


def shard_files(directory):
    return sorted((directory / "events").iterdir())


@pytest.mark.parametrize("codec", ["json", "binary"])
def test_torn_tail_is_recovered_and_only_the_tail_drops(tmp_path, codec):
    directory = tmp_path / "s"
    session = make_session(directory, codec=codec)
    intact = session.status()

    shards = shard_files(directory)
    tail = shards[-1]
    truncate_file(tail, keep=len(tail.read_bytes()) // 2)

    restored = EvaluationSession.restore(
        directory, wal_factory=lambda d: SessionWAL(d, codec=codec))
    # The torn write was the final ingest; everything acknowledged
    # before it survives, and the proposal it answered is outstanding
    # again.
    assert restored.wal.recovered and \
        restored.wal.recovered[0]["file"] == tail.name
    assert not tail.exists()  # unlinked, so the sequence has no ghost
    status = restored.status()
    assert status["draws"] == intact["draws"] - 5
    assert status["labels_consumed"] < intact["labels_consumed"]
    assert status["outstanding"] is not None
    # ...and the log keeps appending cleanly from the recovered seq.
    restored.ingest(status["outstanding"]["ticket"],
                    [0] * len(status["outstanding"]["pending"]))
    again = EvaluationSession.restore(
        directory, wal_factory=lambda d: SessionWAL(d, codec=codec))
    assert again.wal.recovered == []
    assert again.status()["draws"] == intact["draws"]


@pytest.mark.parametrize("codec", ["json", "binary"])
def test_truncation_mid_log_raises_corrupt_state(tmp_path, codec):
    directory = tmp_path / "s"
    make_session(directory, codec=codec)
    victim = shard_files(directory)[1]  # acknowledged history, not the tail
    truncate_file(victim, keep=6)
    with pytest.raises(CorruptStateError) as excinfo:
        EvaluationSession.restore(directory)
    assert victim.name in str(excinfo.value)
    assert excinfo.value.path == str(victim)
    assert excinfo.value.offset == 6


@pytest.mark.parametrize("codec", ["json", "binary"])
def test_bit_flip_raises_corrupt_state_naming_the_file(tmp_path, codec):
    directory = tmp_path / "s"
    make_session(directory, codec=codec)
    victim = shard_files(directory)[0]
    flip_bits(victim, [len(victim.read_bytes()) - 1])  # payload bit rot
    with pytest.raises(CorruptStateError, match="CRC32C") as excinfo:
        EvaluationSession.restore(directory)
    assert victim.name in str(excinfo.value)


def test_trailing_garbage_raises_corrupt_state(tmp_path):
    directory = tmp_path / "s"
    make_session(directory)
    victim = shard_files(directory)[0]
    victim.write_bytes(victim.read_bytes() + b"??")
    with pytest.raises(CorruptStateError, match="trailing garbage"):
        EvaluationSession.restore(directory)


def test_empty_tail_shard_recovers_but_empty_mid_log_raises(tmp_path):
    directory = tmp_path / "s"
    make_session(directory)
    shards = shard_files(directory)
    shards[-1].write_bytes(b"")
    restored = EvaluationSession.restore(directory)
    assert restored.wal.recovered
    shards = shard_files(restored.wal.directory)
    shards[0].write_bytes(b"")
    with pytest.raises(CorruptStateError):
        EvaluationSession.restore(directory)


def test_pre_frame_shards_still_load(tmp_path):
    """Journals written before the frame format (committed fixtures,
    old deployments) parse unchecked rather than failing."""
    directory = tmp_path / "s"
    session = make_session(directory, rounds=1)
    expected = session.status()
    for path in shard_files(directory):
        data = path.read_bytes()
        assert data[:4] == b"WFC1"
        payload = data[12:]  # strip magic + length + crc → legacy shape
        path.write_bytes(payload)
    restored = EvaluationSession.restore(directory)
    assert restored.wal.recovered == []
    assert restored.status() == expected


def test_manifest_digest_detects_rot_and_sidecar_is_optional(tmp_path):
    directory = tmp_path / "s"
    make_session(directory, rounds=1)
    sidecar = directory / SessionWAL.MANIFEST_DIGEST
    assert sidecar.is_file()

    manifest = directory / SessionWAL.MANIFEST
    original = manifest.read_bytes()
    flip_bits(manifest, [len(original) // 2])
    with pytest.raises(CorruptStateError, match="manifest"):
        EvaluationSession.restore(directory)

    # Without the sidecar the (restored) manifest loads unverified —
    # the pre-digest journal layout.
    manifest.write_bytes(original)
    sidecar.unlink()
    assert EvaluationSession.restore(directory).status()["draws"] > 0


def test_batch_shards_are_framed_and_torn_batch_tail_recovers(tmp_path):
    directory = tmp_path / "s"
    session = make_session(
        directory, rounds=3,
        wal_factory=lambda d: GroupCommitWAL(d, max_batch=64))
    session.wal.flush()
    shards = shard_files(directory)
    assert all(path.name.startswith("b") for path in shards)
    truncate_file(shards[-1], keep=20)
    restored = EvaluationSession.restore(directory)
    assert restored.wal.recovered
    # A torn batch drops *all* its events — none were acknowledged.
    assert restored.status()["draws"] == 0


# -- exactly-once idempotency ----------------------------------------------

def pool():
    rng = np.random.default_rng(4)
    labels = (rng.random(80) < 0.35).astype(int)
    scores = rng.normal(size=80) + labels
    return (scores > 0.3).astype(int).tolist(), scores.tolist(), labels


def test_keyed_propose_retry_replays_without_burning_randomness(tmp_path):
    predictions, scores, _ = pool()
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis", seed=1,
        directory=tmp_path / "s")
    first = session.propose(6, idempotency_key="p-1")
    retry = session.propose(6, idempotency_key="p-1")
    assert retry == first
    # An unkeyed duplicate would have raised the outstanding-proposal
    # conflict; the replay is a pure cache hit.
    assert session.status()["outstanding"]["ticket"] == first["ticket"]


def test_keyed_ingest_retry_does_not_double_count(tmp_path):
    predictions, scores, labels = pool()
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis", seed=1,
        directory=tmp_path / "s")
    proposal = session.propose(6)
    answer = [int(labels[i]) for i in proposal["pending"]]
    first = session.ingest(proposal["ticket"], answer,
                           idempotency_key="i-1")
    retry = session.ingest(proposal["ticket"], answer,
                           idempotency_key="i-1")
    assert retry == first
    assert session.labels_consumed == first["labels_consumed"]


def test_dedup_window_survives_replay_and_checkpoint(tmp_path):
    predictions, scores, labels = pool()
    directory = tmp_path / "s"
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis", seed=2, directory=directory)
    proposal = session.propose(5, idempotency_key="p-1")
    answer = [int(labels[i]) for i in proposal["pending"]]
    committed = session.ingest(proposal["ticket"], answer,
                               idempotency_key="i-1")

    # Plain journal replay rebuilds the window from the logged keys.
    replayed = EvaluationSession.restore(directory)
    assert replayed.ingest(0, [], idempotency_key="i-1") == committed
    assert replayed.labels_consumed == committed["labels_consumed"]

    # And a checkpoint carries it, so restore-from-checkpoint (which
    # skips the replayed events) still dedups.
    replayed.checkpoint()
    restored = EvaluationSession.restore(directory)
    assert restored.propose(5, idempotency_key="p-1") == proposal
    assert restored.ingest(0, [], idempotency_key="i-1") == committed


def test_dedup_window_is_bounded(tmp_path):
    predictions, scores, labels = pool()
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis", seed=3)
    for index in range(DEDUP_WINDOW + 10):
        proposal = session.propose(2, idempotency_key=f"p-{index}")
        session.ingest(proposal["ticket"],
                       [int(labels[i]) for i in proposal["pending"]],
                       idempotency_key=f"i-{index}")
    assert len(session._dedup) == DEDUP_WINDOW
    # The oldest keys fell out of the window: a (pathologically) stale
    # retry now conflicts instead of replaying — bounded memory is the
    # trade, and the bound far exceeds any live in-flight set.
    assert "p-0" not in session._dedup


# -- disk-full degradation -------------------------------------------------

class _FullDiskWAL(SessionWAL):
    """Synchronous WAL whose shard writes fail like a full volume."""

    full = False

    def _write_durable(self, path, data):
        if self.full:
            raise OSError(errno.ENOSPC, "no space left on device (test)")
        super()._write_durable(path, data)


def test_enospc_maps_to_storage_full_and_state_is_unchanged(tmp_path):
    predictions, scores, labels = pool()
    session = EvaluationSession.create(
        predictions, scores, sampler="oasis", seed=5,
        directory=tmp_path / "s", wal_factory=_FullDiskWAL)
    proposal = session.propose(4)
    session.ingest(proposal["ticket"],
                   [int(labels[i]) for i in proposal["pending"]])
    before = session.status()

    session.wal.full = True
    with pytest.raises(StorageFullError) as excinfo:
        session.propose(4)
    assert excinfo.value.status == 503
    assert excinfo.value.retry_after > 0
    # Journal-before-mutate: the failed propose left nothing behind —
    # no outstanding proposal, no consumed randomness, no journal gap.
    assert session.status() == before

    session.wal.full = False
    retry = session.propose(4)
    restored = EvaluationSession.restore(tmp_path / "s")
    assert restored.status()["outstanding"]["ticket"] == retry["ticket"]


# -- chunk-store digests ---------------------------------------------------

def records(n=25):
    return [
        Record(record_id=i, entity_id=i % 7, fields={"name": f"r{i}"})
        for i in range(n)
    ]


def test_chunk_digests_recorded_and_verified(tmp_path):
    store = ChunkedRecordStore.create(
        tmp_path / "db", ("name",), records(), chunk_size=10)
    manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
    assert len(manifest["chunk_digests"]) == store.n_chunks == 3
    chunk = tmp_path / "db" / "chunk-00000000.npz"
    assert manifest["chunk_digests"][0] == file_digest(chunk)

    flip_bits(chunk, [100])
    fresh = ChunkedRecordStore(tmp_path / "db")
    with pytest.raises(CorruptStateError, match="SHA-256"):
        fresh[0]
    # Undamaged chunks keep serving.
    assert fresh[12].get("name") == "r12"


def test_chunk_store_without_digests_still_opens(tmp_path):
    ChunkedRecordStore.create(
        tmp_path / "db", ("name",), records(), chunk_size=10)
    manifest_path = tmp_path / "db" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["chunk_digests"]
    manifest_path.write_text(json.dumps(manifest))
    store = ChunkedRecordStore(tmp_path / "db")
    assert store[3].get("name") == "r3"


def test_chunk_store_garbage_manifest_raises_corrupt_state(tmp_path):
    ChunkedRecordStore.create(
        tmp_path / "db", ("name",), records(), chunk_size=10)
    (tmp_path / "db" / "manifest.json").write_bytes(b"\x00not json")
    with pytest.raises(CorruptStateError):
        ChunkedRecordStore(tmp_path / "db")
