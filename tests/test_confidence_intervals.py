"""Tests for the delta-method confidence intervals (extension)."""

import numpy as np
import pytest

from repro.core import AISEstimator, OASISSampler
from repro.measures import pool_performance
from repro.oracle import DeterministicOracle
from repro.samplers import PassiveSampler


class TestEstimatorVariance:
    def test_requires_tracking(self):
        est = AISEstimator()
        est.update(1, 1)
        with pytest.raises(RuntimeError, match="track_observations"):
            est.variance_estimate()

    def test_nan_when_undefined(self):
        est = AISEstimator(track_observations=True)
        est.update(0, 0)
        assert np.isnan(est.variance_estimate())
        lo, hi = est.confidence_interval()
        assert np.isnan(lo) and np.isnan(hi)

    def test_variance_positive_on_mixed_sample(self):
        est = AISEstimator(track_observations=True)
        for label, pred in [(1, 1), (0, 1), (1, 0), (1, 1), (0, 0)]:
            est.update(label, pred)
        assert est.variance_estimate() > 0

    def test_variance_shrinks_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = AISEstimator(track_observations=True)
        large = AISEstimator(track_observations=True)
        data = [(int(rng.random() < 0.3), int(rng.random() < 0.4)) for __ in range(2000)]
        for label, pred in data[:100]:
            small.update(label, pred)
        for label, pred in data:
            large.update(label, pred)
        assert large.variance_estimate() < small.variance_estimate()

    def test_interval_contains_estimate(self):
        est = AISEstimator(track_observations=True)
        rng = np.random.default_rng(1)
        for __ in range(200):
            est.update(int(rng.random() < 0.5), int(rng.random() < 0.5))
        lo, hi = est.confidence_interval(0.95)
        assert lo <= est.estimate <= hi

    def test_higher_level_wider_interval(self):
        est = AISEstimator(track_observations=True)
        rng = np.random.default_rng(2)
        for __ in range(300):
            est.update(int(rng.random() < 0.4), int(rng.random() < 0.5))
        lo90, hi90 = est.confidence_interval(0.90)
        lo99, hi99 = est.confidence_interval(0.99)
        assert (hi99 - lo99) > (hi90 - lo90)

    def test_level_validation(self):
        est = AISEstimator(track_observations=True)
        est.update(1, 1)
        with pytest.raises(ValueError, match="level"):
            est.confidence_interval(1.0)

    def test_interval_clipped_to_unit(self):
        est = AISEstimator(track_observations=True)
        # A tiny all-positive sample: estimate 1.0, wide uncertainty.
        est.update(1, 1)
        est.update(1, 1)
        lo, hi = est.confidence_interval(0.99)
        assert 0.0 <= lo <= hi <= 1.0

    def test_reset_clears_observations(self):
        est = AISEstimator(track_observations=True)
        est.update(1, 1)
        est.reset()
        est.update(1, 1)
        assert est.n_observations == 1


class TestCoverage:
    def test_passive_coverage_near_nominal(self):
        """On uniform sampling the CI should cover truth most of the time."""
        rng = np.random.default_rng(3)
        n = 2000
        labels = (rng.random(n) < 0.1).astype(np.int8)
        scores = labels + rng.normal(0, 0.3, size=n)
        predictions = (scores > 0.5).astype(np.int8)
        true_f = pool_performance(labels, predictions)["f_measure"]

        covered = 0
        trials = 30
        for seed in range(trials):
            sampler = PassiveSampler(
                predictions, scores, DeterministicOracle(labels),
                random_state=seed,
            )
            sampler.sample(600)
            lo, hi = sampler.confidence_interval(0.95)
            if lo <= true_f <= hi:
                covered += 1
        # Loose lower bound: nominal 95%, tolerate Monte-Carlo noise.
        assert covered / trials >= 0.8


class TestSamplerIntegration:
    def test_oasis_interval_available(self, imbalanced_pool):
        pool = imbalanced_pool
        sampler = OASISSampler(
            pool["predictions"], pool["scores"],
            DeterministicOracle(pool["true_labels"]), random_state=0,
        )
        sampler.sample_until_budget(300)
        lo, hi = sampler.confidence_interval(0.95)
        assert 0.0 <= lo <= sampler.estimate <= hi <= 1.0

    def test_oasis_interval_narrows(self, imbalanced_pool):
        pool = imbalanced_pool
        sampler = OASISSampler(
            pool["predictions"], pool["scores"],
            DeterministicOracle(pool["true_labels"]), random_state=1,
        )
        sampler.sample_until_budget(150)
        early = sampler.confidence_interval(0.95)
        sampler.sample_until_budget(1200)
        late = sampler.confidence_interval(0.95)
        assert (late[1] - late[0]) < (early[1] - early[0])
