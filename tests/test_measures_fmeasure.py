"""Tests for the F-measure family (paper Eqn 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.measures import (
    alpha_from_beta,
    beta_from_alpha,
    f_measure,
    f_measure_from_counts,
    pool_performance,
    precision,
    recall,
)
from repro.measures.confusion import ConfusionCounts


class TestAlphaBetaConversion:
    def test_balanced(self):
        # beta = 1 (balanced F1) corresponds to alpha = 1/2.
        assert alpha_from_beta(1.0) == pytest.approx(0.5)

    def test_precision_limit(self):
        assert alpha_from_beta(0.0) == pytest.approx(1.0)

    def test_round_trip(self):
        for beta in [0.5, 1.0, 2.0]:
            assert beta_from_alpha(alpha_from_beta(beta)) == pytest.approx(beta)

    def test_negative_beta_raises(self):
        with pytest.raises(ValueError):
            alpha_from_beta(-1.0)


class TestFMeasure:
    def test_perfect_predictions(self):
        y = [1, 0, 1, 0]
        assert f_measure(y, y) == pytest.approx(1.0)

    def test_alpha_one_is_precision(self):
        true = [1, 0, 0, 1]
        pred = [1, 1, 0, 0]
        # precision = TP / (TP + FP) = 1 / 2.
        assert f_measure(true, pred, alpha=1.0) == pytest.approx(0.5)
        assert precision(true, pred) == pytest.approx(0.5)

    def test_alpha_zero_is_recall(self):
        true = [1, 0, 0, 1]
        pred = [1, 1, 0, 0]
        # recall = TP / (TP + FN) = 1 / 2.
        assert f_measure(true, pred, alpha=0.0) == pytest.approx(0.5)
        assert recall(true, pred) == pytest.approx(0.5)

    def test_balanced_f_is_harmonic_mean(self):
        true = [1, 1, 0, 0, 1, 0]
        pred = [1, 0, 1, 0, 1, 0]
        p = precision(true, pred)
        r = recall(true, pred)
        expected = 2 * p * r / (p + r)
        assert f_measure(true, pred, alpha=0.5) == pytest.approx(expected)

    def test_undefined_when_no_positives(self):
        assert np.isnan(f_measure([0, 0], [0, 0]))

    def test_zero_f_when_disjoint(self):
        assert f_measure([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_weights_scale_invariance(self):
        true = [1, 0, 1, 1, 0]
        pred = [1, 1, 1, 0, 0]
        unweighted = f_measure(true, pred)
        weighted = f_measure(true, pred, weights=[2.0] * 5)
        assert weighted == pytest.approx(unweighted)

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError, match="alpha"):
            f_measure([1], [1], alpha=1.5)

    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)),
            min_size=1,
            max_size=50,
        ),
        st.floats(0, 1),
    )
    def test_property_range(self, pairs, alpha):
        true = [t for t, _ in pairs]
        pred = [p for _, p in pairs]
        value = f_measure(true, pred, alpha=alpha)
        assert np.isnan(value) or 0.0 <= value <= 1.0

    @given(st.integers(1, 20), st.integers(0, 20), st.integers(0, 20))
    def test_property_monotone_in_tp(self, tp, fp, fn):
        low = f_measure_from_counts(ConfusionCounts(tp, fp, fn, 0), alpha=0.5)
        high = f_measure_from_counts(ConfusionCounts(tp + 1, fp, fn, 0), alpha=0.5)
        assert high >= low - 1e-12


class TestPoolPerformance:
    def test_keys(self):
        out = pool_performance([1, 0, 1], [1, 1, 0])
        assert set(out) >= {"precision", "recall", "f_measure", "counts"}

    def test_counts_totals(self):
        out = pool_performance([1, 0, 1, 0], [1, 1, 0, 0])
        counts = out["counts"]
        assert counts.total == pytest.approx(4.0)
        assert counts.tp == pytest.approx(1.0)
        assert counts.fp == pytest.approx(1.0)
        assert counts.fn == pytest.approx(1.0)
        assert counts.tn == pytest.approx(1.0)

    def test_matches_direct_functions(self):
        true = [1, 0, 0, 1, 1, 0]
        pred = [1, 0, 1, 1, 0, 0]
        out = pool_performance(true, pred)
        assert out["precision"] == pytest.approx(precision(true, pred))
        assert out["recall"] == pytest.approx(recall(true, pred))
