"""Unit tests for the dependency-free metrics stack.

Covers the registry (families, labels, thread-safety of the public
contract), snapshot algebra (merge, shard labelling), the
counter-reset accumulator that makes worker restarts invisible to
scrapers, and the hand-rolled Prometheus text renderer/parser pair.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.utils.metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    PROMETHEUS_CONTENT_TYPE,
    CounterResetAccumulator,
    MetricsRegistry,
    add_snapshot_label,
    log_spaced_buckets,
    merge_snapshots,
    parse_prometheus_text,
    render_prometheus,
)


class TestRegistry:
    def test_counter_accumulates_per_label(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "reqs", ("op",))
        requests.inc(op="propose")
        requests.inc(2.0, op="propose")
        requests.inc(op="ingest")
        assert requests.value(op="propose") == 3.0
        assert requests.value(op="ingest") == 1.0

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_counter_rejects_wrong_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("op",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(method="GET")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()

    def test_gauge_sets_and_moves_both_ways(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth")
        depth.set(7)
        assert depth.value() == 7.0
        depth.inc(-3)
        assert depth.value() == 4.0

    def test_histogram_buckets_and_totals(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        state = hist.value()
        assert state["count"] == 5
        assert state["sum"] == pytest.approx(56.05)
        # per-bucket internal storage: (<=0.1, <=1, <=10, +Inf)
        assert state["buckets"] == [1, 2, 1, 1]

    def test_histogram_boundary_lands_in_lower_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.value()["buckets"] == [1, 0, 0]

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "hits", ("op",))
        b = registry.counter("hits_total", "hits", ("op",))
        assert a is b

    def test_reregistration_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("op",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", "", ("method",))

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help a", ("op",)).inc(op="x")
        registry.histogram("b", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped == snapshot
        assert round_tripped["instance"] == registry.instance

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("anything_total").inc(5)
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.histogram("h").observe(0.2)
        assert NULL_REGISTRY.snapshot()["families"] == {}

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(500)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000.0


class TestBuckets:
    def test_log_spaced_buckets_cover_range(self):
        edges = log_spaced_buckets(1e-3, 1.0, per_decade=1)
        assert edges[0] <= 1e-3
        assert edges[-1] >= 1.0
        assert list(edges) == sorted(edges)

    def test_default_latency_buckets_span_micro_to_seconds(self):
        assert LATENCY_BUCKETS[0] <= 1e-5
        assert LATENCY_BUCKETS[-1] >= 10.0

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(1.0, 0.5)


class TestSnapshotAlgebra:
    def _snap(self, **counts):
        registry = MetricsRegistry()
        for name, value in counts.items():
            registry.counter(f"{name}_total").inc(value)
        return registry.snapshot()

    def test_merge_adds_counters(self):
        merged = merge_snapshots([self._snap(a=2), self._snap(a=3)])
        samples = merged["families"]["a_total"]["samples"]
        assert samples == [[[], 5.0]]

    def test_merge_gauges_last_win(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("g").set(1)
        second.gauge("g").set(9)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["families"]["g"]["samples"] == [[[], 9.0]]

    def test_merge_histograms_elementwise(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        for registry, values in ((first, (0.05, 0.5)), (second, (5.0,))):
            hist = registry.histogram("h", buckets=(0.1, 1.0))
            for value in values:
                hist.observe(value)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        (_, state), = merged["families"]["h"]["samples"]
        assert state["count"] == 3
        assert state["buckets"] == [1, 1, 1]

    def test_merge_type_mismatch_raises(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("x")
        first.counter("x").inc()
        second.gauge("x").set(1)
        with pytest.raises(ValueError, match="cannot merge"):
            merge_snapshots([first.snapshot(), second.snapshot()])

    def test_add_snapshot_label_prepends(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "", ("op",)).inc(op="x")
        labelled = add_snapshot_label(registry.snapshot(), "shard", "3")
        family = labelled["families"]["a_total"]
        assert family["labelnames"] == ["shard", "op"]
        assert family["samples"] == [[["3", "x"], 1.0]]

    def test_shard_labelled_snapshots_merge_without_collision(self):
        shards = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.counter("req_total").inc(index + 1)
            shards.append(add_snapshot_label(
                registry.snapshot(), "shard", str(index)))
        merged = merge_snapshots(shards)
        samples = merged["families"]["req_total"]["samples"]
        assert sorted(tuple(k) for k, _ in samples) == [
            ("0",), ("1",), ("2",)]


class TestCounterResetAccumulator:
    def test_within_instance_passthrough(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        accumulator = CounterResetAccumulator()
        counter.inc(3)
        out = accumulator.adjust("s", registry.snapshot())
        assert out["families"]["n_total"]["samples"] == [[[], 3.0]]

    def test_restart_banks_previous_instance(self):
        accumulator = CounterResetAccumulator()
        first = MetricsRegistry()
        first.counter("n_total").inc(10)
        accumulator.adjust("s", first.snapshot())
        # the worker restarts: fresh instance id, counters reset
        second = MetricsRegistry()
        second.counter("n_total").inc(2)
        out = accumulator.adjust("s", second.snapshot())
        assert out["families"]["n_total"]["samples"] == [[[], 12.0]]

    def test_double_restart_accumulates_carry(self):
        accumulator = CounterResetAccumulator()
        total = 0.0
        for increment in (5, 7, 3):
            registry = MetricsRegistry()
            registry.counter("n_total").inc(increment)
            out = accumulator.adjust("s", registry.snapshot())
            total += increment
        assert out["families"]["n_total"]["samples"] == [[[], total]]

    def test_out_of_order_scrape_stays_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        accumulator = CounterResetAccumulator()
        counter.inc(5)
        newer = registry.snapshot()
        accumulator.adjust("s", newer)
        # a stale snapshot (taken before the inc) arrives late
        stale = json.loads(json.dumps(newer))
        stale["families"]["n_total"]["samples"] = [[[], 2.0]]
        out = accumulator.adjust("s", stale)
        assert out["families"]["n_total"]["samples"] == [[[], 5.0]]

    def test_gauges_pass_through_unadjusted(self):
        accumulator = CounterResetAccumulator()
        first = MetricsRegistry()
        first.gauge("g").set(10)
        accumulator.adjust("s", first.snapshot())
        second = MetricsRegistry()
        second.gauge("g").set(4)
        out = accumulator.adjust("s", second.snapshot())
        assert out["families"]["g"]["samples"] == [[[], 4.0]]

    def test_histogram_survives_restart(self):
        accumulator = CounterResetAccumulator()
        first = MetricsRegistry()
        hist = first.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        accumulator.adjust("s", first.snapshot())
        second = MetricsRegistry()
        second.histogram("h", buckets=(1.0,)).observe(0.1)
        out = accumulator.adjust("s", second.snapshot())
        (_, state), = out["families"]["h"]["samples"]
        assert state["count"] == 3
        assert state["buckets"] == [2, 1]

    def test_banked_series_render_when_live_snapshot_lacks_them(self):
        accumulator = CounterResetAccumulator()
        first = MetricsRegistry()
        first.counter("n_total", "", ("op",)).inc(4, op="ingest")
        accumulator.adjust("s", first.snapshot())
        # after restart the worker has only seen proposes so far; the
        # ingest series it counted before must still render
        second = MetricsRegistry()
        second.counter("n_total", "", ("op",)).inc(1, op="propose")
        out = accumulator.adjust("s", second.snapshot())
        samples = {tuple(k): v
                   for k, v in out["families"]["n_total"]["samples"]}
        assert samples == {("propose",): 1.0, ("ingest",): 4.0}

    def test_banked_family_renders_when_absent_from_live_snapshot(self):
        # after a restart the fresh registry may not have re-registered
        # a family at all (e.g. per-session counters before any session
        # is resident); the bank must still render it
        accumulator = CounterResetAccumulator()
        first = MetricsRegistry()
        first.counter("draws_total", "draws", ("session",)).inc(
            9, session="s1")
        accumulator.adjust("s", first.snapshot())
        second = MetricsRegistry()
        second.counter("other_total").inc(1)
        out = accumulator.adjust("s", second.snapshot())
        family = out["families"]["draws_total"]
        assert family["type"] == "counter"
        assert family["labelnames"] == ["session"]
        assert family["samples"] == [[["s1"], 9.0]]

    def test_sources_are_independent(self):
        accumulator = CounterResetAccumulator()
        for source, amount in (("a", 1), ("b", 100)):
            registry = MetricsRegistry()
            registry.counter("n_total").inc(amount)
            out = accumulator.adjust(source, registry.snapshot())
            assert out["families"]["n_total"]["samples"] == [
                [[], float(amount)]]


class TestExpositionText:
    def test_content_type_constant(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("op",)).inc(3, op="x")
        registry.gauge("depth", "queue depth").set(2)
        hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus_text(text)
        assert parsed["req_total"]["type"] == "counter"
        assert parsed["req_total"]["samples"][
            ("req_total", (("op", "x"),))] == 3.0
        assert parsed["depth"]["samples"][("depth", ())] == 2.0
        lat = parsed["lat"]["samples"]
        assert lat[("lat_count", ())] == 3.0
        assert lat[("lat_sum", ())] == pytest.approx(5.55)
        # cumulative le series: 1 at <=0.1, 2 at <=1, 3 at +Inf
        assert lat[("lat_bucket", (("le", "0.1"),))] == 1.0
        assert lat[("lat_bucket", (("le", "1.0"),))] == 2.0
        assert lat[("lat_bucket", (("le", "+Inf"),))] == 3.0

    def test_histogram_bucket_counts_are_cumulative_and_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5, 9.0):
            hist.observe(value)
        parsed = parse_prometheus_text(render_prometheus(registry.snapshot()))
        samples = parsed["h"]["samples"]
        buckets = sorted(
            (value for (metric, _), value in samples.items()
             if metric == "h_bucket"))
        assert buckets == sorted(buckets), "le series must be cumulative"
        assert buckets[-1] == samples[("h_count", ())]

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("path",)).inc(
            path='with "quotes" and \\slash')
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus_text(text)
        assert parsed["c_total"]["type"] == "counter"

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not exposition format")
        with pytest.raises(ValueError):
            parse_prometheus_text('x{unclosed="1 5\n')

    def test_render_merge_across_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("n_total").inc(1)
        second.counter("n_total").inc(2)
        text = first.render([second.snapshot()])
        parsed = parse_prometheus_text(text)
        assert parsed["n_total"]["samples"][("n_total", ())] == 3.0
