"""Hypothesis parity suite: vectorised pipeline vs scalar reference.

The vectorised hot path (array kernels behind
``PairFeatureExtractor.transform``, join-based blocking) must agree
with the per-pair reference semantics on arbitrary records — unicode
text, missing values, NaN-prone numerics, empty stores-worth of
degenerate keys.  Feature parity is asserted to 1e-12; blocking parity
is exact (same sorted pair arrays).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import (
    FieldSpec,
    PairFeatureExtractor,
    Record,
    RecordStore,
    TokenSetMatrix,
    build_token_vocabulary,
    jaccard_pairs,
    sorted_neighbourhood_pairs,
    sorted_neighbourhood_pairs_reference,
    token_blocking_pairs,
    token_blocking_pairs_reference,
)

# Text with unicode (accents, symbols, CJK), whitespace and empties.
text_values = st.one_of(
    st.none(),
    st.text(
        alphabet="aàbcdé øß中 19!-$ ",
        max_size=24,
    ),
)
numeric_values = st.one_of(
    st.none(),
    st.integers(-10**6, 10**6),
    st.floats(-1e6, 1e6, allow_nan=False),
    st.floats(allow_nan=True, allow_infinity=False, width=32),
    st.sampled_from(["", "  ", "$1,234.5", "7", "not-a-number"]),
)

SCHEMA = ("short", "long", "num")


def _store(rows) -> RecordStore:
    store = RecordStore(SCHEMA)
    for i, (short, long_, num) in enumerate(rows):
        store.add(Record(i, i, {"short": short, "long": long_, "num": num}))
    return store


record_rows = st.lists(
    st.tuples(text_values, text_values, numeric_values), min_size=1, max_size=12
)


@settings(max_examples=40, deadline=None)
@given(rows_a=record_rows, rows_b=record_rows, seed=st.integers(0, 10**6))
def test_transform_matches_reference(rows_a, rows_b, seed):
    store_a, store_b = _store(rows_a), _store(rows_b)
    extractor = PairFeatureExtractor(
        [
            FieldSpec("short", "short_text"),
            FieldSpec("long", "long_text"),
            FieldSpec("num", "numeric"),
        ],
        chunk_size=3,  # force multiple chunks even on tiny pools
    ).fit(store_a, store_b)
    rng = np.random.default_rng(seed)
    n_pairs = int(rng.integers(0, 40))
    pairs = np.column_stack(
        [
            rng.integers(0, len(store_a), n_pairs),
            rng.integers(0, len(store_b), n_pairs),
        ]
    )
    vectorised = extractor.transform(pairs)
    reference = extractor.transform_reference(pairs)
    assert vectorised.shape == reference.shape == (n_pairs, 3)
    np.testing.assert_allclose(vectorised, reference, rtol=0.0, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(rows_a=record_rows, rows_b=record_rows, seed=st.integers(0, 10**6))
def test_dedup_self_comparison_matches_reference(rows_a, rows_b, seed):
    """Cora-style dedup: one store compared with itself."""
    del rows_b
    store = _store(rows_a)
    extractor = PairFeatureExtractor(
        [FieldSpec("short", "short_text"), FieldSpec("num", "numeric")],
        chunk_size=2,
    ).fit(store, store)
    rng = np.random.default_rng(seed)
    pairs = np.column_stack(
        [rng.integers(0, len(store), 25), rng.integers(0, len(store), 25)]
    )
    np.testing.assert_allclose(
        extractor.transform(pairs),
        extractor.transform_reference(pairs),
        rtol=0.0,
        atol=1e-12,
    )


@settings(max_examples=40, deadline=None)
@given(
    rows_a=record_rows,
    rows_b=record_rows,
    max_block_size=st.one_of(st.none(), st.integers(1, 8)),
    max_pairs_per_token=st.one_of(st.none(), st.integers(1, 30)),
)
def test_token_blocking_matches_reference(
    rows_a, rows_b, max_block_size, max_pairs_per_token
):
    store_a, store_b = _store(rows_a), _store(rows_b)
    joined = token_blocking_pairs(
        store_a,
        store_b,
        "short",
        max_block_size=max_block_size,
        max_pairs_per_token=max_pairs_per_token,
    )
    reference = token_blocking_pairs_reference(
        store_a,
        store_b,
        "short",
        max_block_size=max_block_size,
        max_pairs_per_token=max_pairs_per_token,
    )
    np.testing.assert_array_equal(joined, reference)


@settings(max_examples=40, deadline=None)
@given(rows_a=record_rows, rows_b=record_rows, window=st.integers(2, 9))
def test_sorted_neighbourhood_matches_reference(rows_a, rows_b, window):
    store_a, store_b = _store(rows_a), _store(rows_b)
    joined = sorted_neighbourhood_pairs(store_a, store_b, "short", window=window)
    reference = sorted_neighbourhood_pairs_reference(
        store_a, store_b, "short", window=window
    )
    np.testing.assert_array_equal(joined, reference)


@settings(max_examples=30, deadline=None)
@given(
    sets=st.lists(
        st.sets(st.text(alphabet="abc中é", min_size=1, max_size=3), max_size=10),
        min_size=1,
        max_size=10,
    ),
    seed=st.integers(0, 10**6),
)
def test_jaccard_merge_and_bitmap_methods_agree(sets, seed):
    """The two intersection kernels are interchangeable."""
    vocabulary = build_token_vocabulary(sets)
    matrix = TokenSetMatrix.from_sets(sets, vocabulary)
    rng = np.random.default_rng(seed)
    rows_a = rng.integers(0, len(sets), 30)
    rows_b = rng.integers(0, len(sets), 30)
    merged = jaccard_pairs(matrix, rows_a, matrix, rows_b, method="merge")
    bitmap = jaccard_pairs(matrix, rows_a, matrix, rows_b, method="bitmap")
    np.testing.assert_array_equal(merged, bitmap)
