"""Randomised chaos: a client fleet vs kills, lost acks and torn tails.

The dedicated fault tests each aim one failure at one code path.  This
suite composes them the way a bad week does: a fleet of keyed
:class:`~repro.service.client.EvaluationClient` threads drives several
sessions through a 2-shard binary-codec service across multiple
*incarnations* (full stop/start of the whole tier), while a seeded
schedule SIGKILLs workers mid-drive, arms dropped-ack network faults,
and plants torn half-written frames at each journal's tail between
incarnations.

Every injected fault respects the service's one promise — acknowledged
events are durable — which is exactly what makes the final assertion
possible: after all the chaos, every session's trajectory must be
**bit-identical** to an uninterrupted in-process run at the same seed.
The torn tails planted between incarnations imitate the only torn
writes a real crash can produce (an in-flight, never-acknowledged
append); they must be silently discarded by torn-tail recovery, never
surfacing to clients at all.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.service.client import EvaluationClient
from repro.service.wal import _BATCH_RE, _EVENT_RE, frame_payload

from test_service_faults import (
    ShardedService,
    make_pool,
    reference_status,
)

SESSIONS = 3
BATCH = 5
ROUNDS_PER_INCARNATION = 3
# (armed fault spec or None, live mid-drive SIGKILL?) per incarnation;
# torn tails are planted in every gap between incarnations.
INCARNATIONS = [
    (None, True),                                  # plain worker crash
    ({"stage": "sock:drop_ack", "after": 4}, False),   # lost ack
    (None, True),                                  # crash again, post-chaos
]
TOTAL_ROUNDS = ROUNDS_PER_INCARNATION * len(INCARNATIONS)


def plant_torn_tail(root, session_id, rng) -> bool:
    """Append a torn, half-written frame at the journal's next seq.

    This is the footprint of a crash mid-append: a shard file whose
    frame declares more bytes than the file holds.  It is planted at
    the *tail* (a fresh, never-acknowledged sequence number), because
    that is the only place the real write path can tear — everything
    behind it was atomically renamed into place.
    """
    for directory in root.glob(f"shard-*/{session_id}"):
        events = directory / "events"
        if not events.is_dir():
            continue
        last = 0
        for path in events.iterdir():
            match = _EVENT_RE.match(path.name)
            if match:
                last = max(last, int(match.group("seq")))
            match = _BATCH_RE.match(path.name)
            if match:
                last = max(last, int(match.group("last")))
        frame = frame_payload(bytes(rng.getrandbits(8)
                                    for _ in range(rng.randint(40, 200))))
        cut = rng.randrange(1, len(frame) - 1)
        (events / f"e{last + 1:08d}-ingest.bin").write_bytes(frame[:cut])
        return True
    return False


def test_chaos_fleet_trajectories_stay_bit_identical(tmp_path):
    rng = random.Random(0xC4A05)
    predictions, scores, true_labels = make_pool(seed=41, n=150)
    root = tmp_path / "root"
    session_seeds = {f"c{index}": 100 + index for index in range(SESSIONS)}
    errors: list[tuple[str, BaseException]] = []

    def drive(port: int, session_id: str, start: int, stop: int) -> None:
        try:
            with EvaluationClient(f"http://127.0.0.1:{port}",
                                  backoff=0.02, seed=start) as client:
                for index in range(start, stop):
                    proposal = client.propose(
                        session_id, BATCH,
                        idempotency_key=f"{session_id}-p{index}")
                    client.ingest(
                        session_id, proposal["ticket"],
                        [int(true_labels[i]) for i in proposal["pending"]],
                        idempotency_key=f"{session_id}-i{index}")
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append((session_id, exc))

    for phase, (fault, live_kill) in enumerate(INCARNATIONS):
        with ShardedService(root, shards=2, codec="binary",
                            fault=fault) as service:
            if phase == 0:
                with EvaluationClient(
                        f"http://127.0.0.1:{service.port}") as client:
                    for session_id, seed in session_seeds.items():
                        client.create_session(
                            predictions, scores, sampler="oasis",
                            seed=seed, session_id=session_id)
            threads = [
                threading.Thread(target=drive, args=(
                    service.port, session_id,
                    phase * ROUNDS_PER_INCARNATION,
                    (phase + 1) * ROUNDS_PER_INCARNATION,
                ))
                for session_id in session_seeds
            ]
            for thread in threads:
                thread.start()
            if live_kill:
                time.sleep(rng.uniform(0.02, 0.2))
                pids = [pid for pid in service.supervisor.worker_pids()
                        if pid is not None]
                os.kill(rng.choice(pids), signal.SIGKILL)
            for thread in threads:
                thread.join(timeout=180)
                assert not thread.is_alive(), "a driver thread hung"
            assert not errors, errors
            if live_kill:
                # The watcher notices the corpse on its own schedule —
                # possibly after the (fast) drive already finished.
                stop_at = time.monotonic() + 30
                while sum(service.supervisor.restarts) < 1:
                    assert time.monotonic() < stop_at, "respawn never seen"
                    time.sleep(0.05)
            # close() drains gracefully; sessions checkpoint to disk.
        planted = 0
        for session_id in session_seeds:
            if rng.random() < 0.8:
                planted += plant_torn_tail(root, session_id, rng)
        assert planted, "the schedule never exercised torn-tail recovery"

    # The epilogue incarnation: every journal (some freshly torn)
    # restores, and every trajectory equals its fault-free reference.
    with ShardedService(root, shards=2, codec="binary") as service:
        with EvaluationClient(f"http://127.0.0.1:{service.port}") as client:
            finals = {session_id: client.status(session_id)
                      for session_id in session_seeds}
    for session_id, seed in session_seeds.items():
        reference = reference_status(
            predictions, scores, true_labels,
            seed=seed, rounds=TOTAL_ROUNDS, batch_size=BATCH)
        final = finals[session_id]
        assert final["estimate"] == reference["estimate"], session_id
        assert final["draws"] == reference["draws"], session_id
        assert final["labels_consumed"] == reference["labels_consumed"], \
            session_id
        assert final["outstanding"] is None, session_id


def test_planted_torn_tail_is_discarded_silently(tmp_path):
    """The chaos suite's corruption injector really produces the
    recoverable-by-design shape: a service restarted over a planted
    torn tail serves the session as if the tear never happened.
    """
    rng = random.Random(7)
    predictions, scores, true_labels = make_pool(seed=43)
    root = tmp_path / "root"
    with ShardedService(root, shards=2, codec="binary") as service:
        with EvaluationClient(f"http://127.0.0.1:{service.port}") as client:
            client.create_session(predictions, scores, sampler="oasis",
                                  seed=9, session_id="t0")
            proposal = client.propose("t0", BATCH)
            client.ingest("t0", proposal["ticket"],
                          [int(true_labels[i]) for i in proposal["pending"]])
            before = client.status("t0")
    assert plant_torn_tail(root, "t0", rng)
    with ShardedService(root, shards=2, codec="binary") as service:
        with EvaluationClient(f"http://127.0.0.1:{service.port}") as client:
            after = client.status("t0")
    assert after["estimate"] == before["estimate"]
    assert after["draws"] == before["draws"]
