"""Hypothesis property tests for the dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    generate_citation_dedup,
    generate_citation_pair,
    generate_product_pair,
    generate_restaurant_pair,
    generate_tweets,
)
from repro.pipeline import MatchRelation, cross_product_pairs, dedup_pairs


@settings(max_examples=15, deadline=None)
@given(
    n_entities=st.integers(10, 80),
    overlap=st.floats(0.0, 1.0),
    seed=st.integers(0, 1000),
)
def test_two_source_match_count_equals_overlap(n_entities, overlap, seed):
    """Matches == shared entities, exactly, for every generator."""
    expected = int(round(overlap * n_entities))
    for generate in (
        generate_product_pair,
        generate_restaurant_pair,
        generate_citation_pair,
    ):
        store_a, store_b = generate(n_entities, overlap, random_state=seed)
        pairs = cross_product_pairs(len(store_a), len(store_b))
        relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)
        assert relation.n_matches == expected


@settings(max_examples=15, deadline=None)
@given(
    n_entities=st.integers(10, 60),
    mean_duplicates=st.floats(1.0, 5.0),
    seed=st.integers(0, 1000),
)
def test_dedup_store_covers_all_entities(n_entities, mean_duplicates, seed):
    store = generate_citation_dedup(
        n_entities, mean_duplicates=mean_duplicates, random_state=seed
    )
    ids = store.entity_ids()
    # Every entity appears at least once; ids within range.
    assert set(np.unique(ids)) == set(range(n_entities))
    assert len(store) >= n_entities


@settings(max_examples=15, deadline=None)
@given(
    n_items=st.integers(50, 500),
    fraction=st.floats(0.05, 0.95),
    seed=st.integers(0, 1000),
)
def test_tweets_fraction_and_shape(n_items, fraction, seed):
    features, labels = generate_tweets(
        n_items, positive_fraction=fraction, random_state=seed
    )
    assert features.shape == (n_items, 4)
    assert labels.sum() == int(round(n_items * fraction))


@settings(max_examples=10, deadline=None)
@given(noise=st.floats(0.0, 3.0), seed=st.integers(0, 500))
def test_product_records_always_well_formed(noise, seed):
    store_a, store_b = generate_product_pair(
        20, overlap=0.5, noise_level=noise, random_state=seed
    )
    for store in (store_a, store_b):
        for record in store:
            name = record.get("name")
            assert name is None or isinstance(name, str)
            price = record.get("price")
            assert price is None or price == price  # not NaN


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_higher_noise_lowers_match_similarity(seed):
    """More corruption must make matched records less alike."""
    from repro.pipeline.similarity import jaccard_ngram_similarity
    from repro.pipeline.normalise import normalise_string

    def mean_match_similarity(noise):
        store_a, store_b = generate_product_pair(
            40, overlap=1.0, noise_level=noise, random_state=seed
        )
        ids_b = store_b.entity_ids()
        sims = []
        for i, record in enumerate(store_a):
            j = int(np.nonzero(ids_b == record.entity_id)[0][0])
            sims.append(jaccard_ngram_similarity(
                normalise_string(record.get("name")),
                normalise_string(store_b[j].get("name")),
            ))
        return float(np.mean(sims))

    assert mean_match_similarity(0.0) >= mean_match_similarity(3.0) - 0.05
