"""Parallel execution and checkpoint/resume of the trial runner.

The contract under test: a seeded ``run_trials`` produces bit-identical
estimates for any ``n_workers``, streams completed repeats to disk when
``checkpoint_dir`` is set, and a resumed (interrupted) run matches an
uninterrupted one exactly.
"""

import json

import numpy as np
import pytest

from repro.experiments import (
    SamplerSpec,
    TrialStore,
    make_oracle_factory,
    make_sampler_spec,
    run_trials,
)

BUDGETS = [30, 60]


@pytest.fixture(scope="module")
def picklable_specs(tiny_abt_buy):
    return [
        make_sampler_spec(
            "oasis", name="OASIS", n_strata=10,
            threshold=tiny_abt_buy.threshold,
        ),
        make_sampler_spec("passive", name="Passive"),
    ]


@pytest.fixture(scope="module")
def serial_results(tiny_abt_buy, picklable_specs):
    return run_trials(
        tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=4,
        random_state=7,
    )


class TestParallelDeterminism:
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_workers_bit_identical_to_serial(
        self, tiny_abt_buy, picklable_specs, serial_results, n_workers
    ):
        parallel = run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=4,
            random_state=7, n_workers=n_workers,
        )
        for name in serial_results:
            np.testing.assert_array_equal(
                serial_results[name].estimates, parallel[name].estimates
            )

    def test_workers_bit_identical_with_noisy_oracle(
        self, tiny_abt_buy, picklable_specs
    ):
        factory = make_oracle_factory("noisy", flip_prob=0.05)
        kwargs = dict(
            budgets=BUDGETS, n_repeats=3, random_state=13,
            oracle_factory=factory,
        )
        serial = run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        parallel = run_trials(
            tiny_abt_buy, picklable_specs, n_workers=3, **kwargs
        )
        for name in serial:
            np.testing.assert_array_equal(
                serial[name].estimates, parallel[name].estimates
            )

    def test_unpicklable_spec_fails_fast(self, tiny_abt_buy):
        lambda_spec = SamplerSpec("bad", lambda p, s, o, r: None)
        with pytest.raises(ValueError, match="picklable"):
            run_trials(
                tiny_abt_buy, [lambda_spec], budgets=BUDGETS,
                n_repeats=2, random_state=0, n_workers=2,
            )

    def test_worker_count_validated(self, tiny_abt_buy, picklable_specs):
        with pytest.raises(ValueError, match="n_workers"):
            run_trials(
                tiny_abt_buy, picklable_specs, budgets=BUDGETS,
                n_repeats=2, n_workers=0,
            )


class TestCheckpointResume:
    def test_streams_one_shard_per_repeat(
        self, tiny_abt_buy, picklable_specs, serial_results, tmp_path
    ):
        run_dir = tmp_path / "run"
        checkpointed = run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=4,
            random_state=7, checkpoint_dir=run_dir,
        )
        store = TrialStore(run_dir)
        assert len(store.completed()) == 2 * 4
        manifest = store.read_manifest()
        assert manifest["budgets"] == BUDGETS
        assert manifest["specs"] == ["OASIS", "Passive"]
        for name in serial_results:
            np.testing.assert_array_equal(
                serial_results[name].estimates, checkpointed[name].estimates
            )

    def test_interrupted_run_resumes_to_identical_aggregate(
        self, tiny_abt_buy, picklable_specs, serial_results, tmp_path
    ):
        run_dir = tmp_path / "run"
        kwargs = dict(
            budgets=BUDGETS, n_repeats=4, random_state=7,
            checkpoint_dir=run_dir,
        )
        run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        # Simulate an interruption: drop a few completed shards.
        store = TrialStore(run_dir)
        for name in store.completed()[1::3]:
            (store.shard_dir / name).unlink()
        resumed = run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        for name in serial_results:
            np.testing.assert_array_equal(
                serial_results[name].estimates, resumed[name].estimates
            )

    def test_resume_loads_rather_than_recomputes(
        self, tiny_abt_buy, picklable_specs, tmp_path
    ):
        run_dir = tmp_path / "run"
        kwargs = dict(
            budgets=BUDGETS, n_repeats=2, random_state=7,
            checkpoint_dir=run_dir,
        )
        run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        # Plant a sentinel value in one shard; a resume must trust it.
        store = TrialStore(run_dir)
        path = store.shard_path(0, "OASIS", 1)
        payload = json.loads(path.read_text())
        payload["estimates"] = [0.123, 0.456]
        path.write_text(json.dumps(payload))
        resumed = run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        np.testing.assert_allclose(
            resumed["OASIS"].estimates[1], [0.123, 0.456]
        )
        # resume=False recomputes everything, overwriting the sentinel.
        recomputed = run_trials(
            tiny_abt_buy, picklable_specs, resume=False, **kwargs
        )
        assert not np.allclose(
            recomputed["OASIS"].estimates[1], [0.123, 0.456]
        )

    def test_extending_repeats_reuses_completed_shards(
        self, tiny_abt_buy, picklable_specs, tmp_path
    ):
        run_dir = tmp_path / "run"
        short = run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=2,
            random_state=7, checkpoint_dir=run_dir,
        )
        extended = run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=4,
            random_state=7, checkpoint_dir=run_dir,
        )
        assert len(TrialStore(run_dir).completed()) == 2 * 4
        for name in short:
            np.testing.assert_array_equal(
                short[name].estimates, extended[name].estimates[:2]
            )

    def test_config_mismatch_rejected(
        self, tiny_abt_buy, picklable_specs, tmp_path
    ):
        run_dir = tmp_path / "run"
        run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=2,
            random_state=7, checkpoint_dir=run_dir,
        )
        with pytest.raises(ValueError, match="different run configuration"):
            run_trials(
                tiny_abt_buy, picklable_specs, budgets=[30, 61],
                n_repeats=2, random_state=7, checkpoint_dir=run_dir,
            )
        with pytest.raises(ValueError, match="different run configuration"):
            run_trials(
                tiny_abt_buy, picklable_specs, budgets=BUDGETS,
                n_repeats=2, random_state=8, checkpoint_dir=run_dir,
            )

    def test_duplicate_spec_names_rejected(self, tiny_abt_buy):
        specs = [
            make_sampler_spec("passive", name="P"),
            make_sampler_spec("stratified", name="P", n_strata=5),
        ]
        with pytest.raises(ValueError, match="unique"):
            run_trials(
                tiny_abt_buy, specs, budgets=BUDGETS, n_repeats=2,
                random_state=0,
            )

    def test_overwritten_config_clears_stale_shards(
        self, tiny_abt_buy, picklable_specs, tmp_path
    ):
        # Re-running a directory with a new config (resume=False) must
        # not leave old-config shards behind for a later resume to mix
        # in: run A (4 repeats, budgets X), run B (2 repeats, budgets
        # Y, resume=False), then run C (4 repeats, budgets Y, resume)
        # must equal a fresh uninterrupted run, not inherit A's rows.
        run_dir = tmp_path / "run"
        run_trials(
            tiny_abt_buy, picklable_specs, budgets=[10, 20], n_repeats=4,
            random_state=7, checkpoint_dir=run_dir,
        )
        run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=2,
            random_state=7, checkpoint_dir=run_dir, resume=False,
        )
        assert len(TrialStore(run_dir).completed()) == 2 * 2
        resumed = run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=4,
            random_state=7, checkpoint_dir=run_dir,
        )
        fresh = run_trials(
            tiny_abt_buy, picklable_specs, budgets=BUDGETS, n_repeats=4,
            random_state=7,
        )
        for name in fresh:
            np.testing.assert_array_equal(
                fresh[name].estimates, resumed[name].estimates
            )

    def test_shard_with_foreign_budgets_ignored(
        self, tiny_abt_buy, picklable_specs, serial_results, tmp_path
    ):
        run_dir = tmp_path / "run"
        kwargs = dict(
            budgets=BUDGETS, n_repeats=4, random_state=7,
            checkpoint_dir=run_dir,
        )
        run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        store = TrialStore(run_dir)
        path = store.shard_path(0, "OASIS", 0)
        payload = json.loads(path.read_text())
        payload["budgets"] = [10, 20]  # wrong grid, right row length
        path.write_text(json.dumps(payload))
        resumed = run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        for name in serial_results:
            np.testing.assert_array_equal(
                serial_results[name].estimates, resumed[name].estimates
            )

    def test_checkpoint_requires_reproducible_seed(
        self, tiny_abt_buy, picklable_specs, tmp_path
    ):
        with pytest.raises(ValueError, match="random_state"):
            run_trials(
                tiny_abt_buy, picklable_specs, budgets=BUDGETS,
                n_repeats=2, checkpoint_dir=tmp_path / "run",
            )

    def test_torn_shard_is_recomputed(
        self, tiny_abt_buy, picklable_specs, serial_results, tmp_path
    ):
        run_dir = tmp_path / "run"
        kwargs = dict(
            budgets=BUDGETS, n_repeats=4, random_state=7,
            checkpoint_dir=run_dir,
        )
        run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        store = TrialStore(run_dir)
        store.shard_path(0, "OASIS", 0).write_text('{"truncat')
        resumed = run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        for name in serial_results:
            np.testing.assert_array_equal(
                serial_results[name].estimates, resumed[name].estimates
            )

    def test_parallel_resume_combination(
        self, tiny_abt_buy, picklable_specs, serial_results, tmp_path
    ):
        # The acceptance scenario end-to-end: parallel checkpointed run,
        # interruption, parallel resume — identical to the serial,
        # uninterrupted reference.
        run_dir = tmp_path / "run"
        kwargs = dict(
            budgets=BUDGETS, n_repeats=4, random_state=7,
            checkpoint_dir=run_dir, n_workers=2,
        )
        run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        store = TrialStore(run_dir)
        for name in store.completed()[::2]:
            (store.shard_dir / name).unlink()
        resumed = run_trials(tiny_abt_buy, picklable_specs, **kwargs)
        for name in serial_results:
            np.testing.assert_array_equal(
                serial_results[name].estimates, resumed[name].estimates
            )
