"""Tests for experiment result persistence."""

import numpy as np
import pytest

from repro.experiments import (
    aggregate_trajectories,
    load_results,
    save_results,
    stats_from_dict,
    stats_to_dict,
)
from repro.experiments.runner import TrialResult


@pytest.fixture
def results():
    rng = np.random.default_rng(0)
    estimates = rng.random((5, 3))
    estimates[0, 0] = np.nan
    return {
        "OASIS": TrialResult(
            name="OASIS",
            budgets=np.array([10, 20, 40]),
            estimates=estimates,
            true_value=0.45,
        ),
        "Passive": TrialResult(
            name="Passive",
            budgets=np.array([10, 20, 40]),
            estimates=np.full((5, 3), np.nan),
            true_value=0.45,
        ),
    }


class TestSaveLoadResults:
    def test_round_trip(self, results, tmp_path):
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert set(loaded) == {"OASIS", "Passive"}
        for name in results:
            np.testing.assert_allclose(
                loaded[name].estimates, results[name].estimates, equal_nan=True
            )
            np.testing.assert_array_equal(
                loaded[name].budgets, results[name].budgets
            )
            assert loaded[name].true_value == results[name].true_value

    def test_file_is_plain_json(self, results, tmp_path):
        import json

        path = tmp_path / "results.json"
        save_results(results, path)
        payload = json.loads(path.read_text())
        assert "OASIS" in payload
        # NaNs serialised as nulls, not the non-standard NaN literal.
        assert "NaN" not in path.read_text()

    def test_aggregation_survives_round_trip(self, results, tmp_path):
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        original = aggregate_trajectories(results["OASIS"], min_defined=0.0)
        recovered = aggregate_trajectories(loaded["OASIS"], min_defined=0.0)
        np.testing.assert_allclose(
            original.abs_error, recovered.abs_error, equal_nan=True
        )


class TestStatsDictRoundTrip:
    def test_round_trip(self, results):
        stats = aggregate_trajectories(results["OASIS"], min_defined=0.0)
        recovered = stats_from_dict(stats_to_dict(stats))
        assert recovered.name == stats.name
        np.testing.assert_allclose(
            recovered.abs_error, stats.abs_error, equal_nan=True
        )
        np.testing.assert_allclose(
            recovered.defined_fraction, stats.defined_fraction
        )

    def test_dict_is_json_serialisable(self, results):
        import json

        stats = aggregate_trajectories(results["Passive"], min_defined=0.0)
        text = json.dumps(stats_to_dict(stats))
        assert "Passive" in text
