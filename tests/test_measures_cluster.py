"""Tests for cluster-based evaluation measures."""

import pytest

from repro.measures import (
    cluster_precision_recall,
    clusters_from_pairs,
    merge_distance,
    pairs_from_clusters,
)


class TestClustersFromPairs:
    def test_transitive_closure(self):
        # 0-1 and 1-2 match: {0,1,2} despite 0-2 not being declared.
        clusters = clusters_from_pairs(
            [[0, 1], [1, 2], [3, 4]], [1, 1, 0], n_records=5
        )
        as_sets = {frozenset(c) for c in clusters}
        assert frozenset({0, 1, 2}) in as_sets
        assert frozenset({3}) in as_sets
        assert frozenset({4}) in as_sets

    def test_no_matches_all_singletons(self):
        clusters = clusters_from_pairs([[0, 1]], [0], n_records=3)
        assert all(len(c) == 1 for c in clusters)
        assert len(clusters) == 3

    def test_covers_all_records(self):
        clusters = clusters_from_pairs([[0, 3], [2, 4]], [1, 1], n_records=6)
        covered = set().union(*clusters)
        assert covered == set(range(6))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            clusters_from_pairs([[0, 1]], [1, 0], n_records=2)


class TestPairsFromClusters:
    def test_triangle(self):
        assert pairs_from_clusters([{0, 1, 2}]) == {(0, 1), (0, 2), (1, 2)}

    def test_singletons_produce_nothing(self):
        assert pairs_from_clusters([{0}, {1}]) == set()

    def test_round_trip_with_closure(self):
        clusters = [{0, 1, 2}, {3, 4}, {5}]
        pairs = sorted(pairs_from_clusters(clusters))
        rebuilt = clusters_from_pairs(pairs, [1] * len(pairs), n_records=6)
        assert {frozenset(c) for c in rebuilt} == {frozenset(c) for c in clusters}


class TestClusterPrecisionRecall:
    def test_perfect(self):
        clusters = [{0, 1}, {2}]
        out = cluster_precision_recall(clusters, clusters)
        assert out["precision"] == out["recall"] == out["f_measure"] == 1.0

    def test_partial(self):
        predicted = [{0, 1}, {2}, {3}]
        truth = [{0, 1}, {2, 3}]
        out = cluster_precision_recall(predicted, truth)
        assert out["precision"] == pytest.approx(1 / 3)
        assert out["recall"] == pytest.approx(1 / 2)

    def test_disjoint(self):
        out = cluster_precision_recall([{0, 1}], [{0}, {1}])
        assert out["f_measure"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            cluster_precision_recall([], [{0}])


class TestMergeDistance:
    def test_identical_zero(self):
        clusters = [{0, 1, 2}, {3}]
        assert merge_distance(clusters, clusters) == 0

    def test_single_merge(self):
        assert merge_distance([{0}, {1}], [{0, 1}]) == 1

    def test_single_split(self):
        assert merge_distance([{0, 1}], [{0}, {1}]) == 1

    def test_split_then_merge(self):
        # {0,1},{2,3} -> {0,2},{1,3}: split both, merge both = 4 ops.
        predicted = [{0, 1}, {2, 3}]
        truth = [{0, 2}, {1, 3}]
        assert merge_distance(predicted, truth) == 4

    def test_record_in_two_true_clusters_raises(self):
        with pytest.raises(ValueError, match="two true clusters"):
            merge_distance([{0}], [{0}, {0}])

    def test_record_missing_from_truth_raises(self):
        with pytest.raises(ValueError, match="missing"):
            merge_distance([{0, 1}], [{0}])

    def test_symmetric_for_these_cases(self):
        a = [{0, 1}, {2}, {3, 4}]
        b = [{0}, {1, 2}, {3, 4}]
        assert merge_distance(a, b) == merge_distance(b, a)
