"""The service codec: JSON-safe state encoding must be lossless.

Bit-identical restore hinges on the codec — every dtype, every NaN,
every 128-bit RNG state word must survive a JSON round-trip exactly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.service.codec import decode_state, dump_state, encode_state, load_state
from repro.utils import rng_from_state_dict, rng_state_dict


def roundtrip(obj):
    return load_state(dump_state(obj))


class TestScalars:
    def test_passthrough(self):
        for value in [None, True, False, 0, -17, "text", 3.25]:
            assert roundtrip(value) == value

    def test_nan_inf(self):
        assert np.isnan(roundtrip(float("nan")))
        assert roundtrip(float("inf")) == float("inf")
        assert roundtrip(float("-inf")) == float("-inf")

    def test_json_is_standards_compliant(self):
        # NaN must be carried as a tagged object, not bare NaN tokens.
        text = dump_state({"x": float("nan")})
        json.loads(text)  # strict parsers accept it
        assert "NaN" not in text

    def test_bigint_beyond_double_precision(self):
        value = 2**100 + 1
        assert roundtrip(value) == value
        assert roundtrip(-value) == -value

    def test_numpy_scalars_become_python(self):
        assert roundtrip(np.int64(7)) == 7
        assert roundtrip(np.float64(0.5)) == 0.5

    @given(st.floats(allow_nan=False))
    def test_floats_exact(self, value):
        out = roundtrip(value)
        assert out == value or (np.isnan(out) and np.isnan(value))
        # bit-exact, not just approximately equal
        assert np.float64(out).tobytes() == np.float64(value).tobytes()


class TestArrays:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64", "int8",
                                       "uint32", "bool"])
    def test_dtype_preserved(self, dtype):
        array = np.array([0, 1, 1, 0], dtype=dtype)
        out = roundtrip(array)
        assert out.dtype == array.dtype
        np.testing.assert_array_equal(out, array)

    def test_shape_preserved(self):
        array = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = roundtrip(array)
        assert out.shape == (2, 3, 4)
        np.testing.assert_array_equal(out, array)

    def test_nan_and_negative_zero_bits_survive(self):
        array = np.array([np.nan, -0.0, np.inf, -np.inf, 1e-308])
        out = roundtrip(array)
        assert out.tobytes() == array.tobytes()

    def test_decoded_array_is_writable(self):
        out = roundtrip(np.arange(3.0))
        out[0] = 42.0  # frombuffer gives read-only memory; codec must copy
        assert out[0] == 42.0

    @given(hnp.arrays(dtype=st.sampled_from([np.float64, np.int64, np.int8]),
                      shape=hnp.array_shapes(max_dims=2, max_side=8)))
    def test_roundtrip_property(self, array):
        out = roundtrip(array)
        assert out.dtype == array.dtype
        assert out.tobytes() == array.tobytes()


class TestStructures:
    def test_nested(self):
        state = {"a": [1, {"b": np.arange(3), "c": float("nan")}], "d": None}
        out = roundtrip(state)
        np.testing.assert_array_equal(out["a"][1]["b"], np.arange(3))
        assert np.isnan(out["a"][1]["c"])

    def test_tuples_become_lists(self):
        assert roundtrip((1, 2)) == [1, 2]

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            encode_state({1: "x"})

    def test_dunder_keys_rejected(self):
        with pytest.raises(TypeError, match="collides"):
            encode_state({"__ndarray__": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_state(object())

    def test_decode_is_inverse_on_plain_json(self):
        payload = {"plain": [1, 2.5, "x", None, True]}
        assert decode_state(payload) == payload


class TestRNGState:
    def test_pcg64_roundtrip_resumes_stream(self):
        rng = np.random.default_rng(123)
        rng.random(100)
        state = roundtrip(rng_state_dict(rng))
        clone = rng_from_state_dict(state)
        np.testing.assert_array_equal(clone.random(50), rng.random(50))

    def test_mt19937_roundtrip(self):
        # MT19937 state embeds a uint32 key array — the codec must carry it.
        rng = np.random.Generator(np.random.MT19937(7))
        rng.random(10)
        clone = rng_from_state_dict(roundtrip(rng_state_dict(rng)))
        np.testing.assert_array_equal(clone.random(5), rng.random(5))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown bit generator"):
            rng_from_state_dict({"bit_generator": "os", "state": {}})
