"""The service codec: JSON-safe state encoding must be lossless.

Bit-identical restore hinges on the codec — every dtype, every NaN,
every 128-bit RNG state word must survive a JSON round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.measures.ratio import measure_from_spec
from repro.service.codec import (
    decode_state,
    dump_state,
    dump_state_binary,
    encode_state,
    load_state,
    load_state_binary,
)
from repro.utils import rng_from_state_dict, rng_state_dict


def roundtrip(obj):
    return load_state(dump_state(obj))


def binary_roundtrip(obj):
    return load_state_binary(dump_state_binary(obj))


def equal_decoded(a, b) -> bool:
    """Deep equality that treats arrays bit-wise and NaN as equal."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            and a.dtype == b.dtype and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            equal_decoded(a[k], b[k]) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            equal_decoded(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return np.float64(a).tobytes() == np.float64(b).tobytes()
    return type(a) is type(b) and a == b


class TestScalars:
    def test_passthrough(self):
        for value in [None, True, False, 0, -17, "text", 3.25]:
            assert roundtrip(value) == value

    def test_nan_inf(self):
        assert np.isnan(roundtrip(float("nan")))
        assert roundtrip(float("inf")) == float("inf")
        assert roundtrip(float("-inf")) == float("-inf")

    def test_json_is_standards_compliant(self):
        # NaN must be carried as a tagged object, not bare NaN tokens.
        text = dump_state({"x": float("nan")})
        json.loads(text)  # strict parsers accept it
        assert "NaN" not in text

    def test_bigint_beyond_double_precision(self):
        value = 2**100 + 1
        assert roundtrip(value) == value
        assert roundtrip(-value) == -value

    def test_numpy_scalars_become_python(self):
        assert roundtrip(np.int64(7)) == 7
        assert roundtrip(np.float64(0.5)) == 0.5

    @given(st.floats(allow_nan=False))
    def test_floats_exact(self, value):
        out = roundtrip(value)
        assert out == value or (np.isnan(out) and np.isnan(value))
        # bit-exact, not just approximately equal
        assert np.float64(out).tobytes() == np.float64(value).tobytes()


class TestArrays:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64", "int8",
                                       "uint32", "bool"])
    def test_dtype_preserved(self, dtype):
        array = np.array([0, 1, 1, 0], dtype=dtype)
        out = roundtrip(array)
        assert out.dtype == array.dtype
        np.testing.assert_array_equal(out, array)

    def test_shape_preserved(self):
        array = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = roundtrip(array)
        assert out.shape == (2, 3, 4)
        np.testing.assert_array_equal(out, array)

    def test_nan_and_negative_zero_bits_survive(self):
        array = np.array([np.nan, -0.0, np.inf, -np.inf, 1e-308])
        out = roundtrip(array)
        assert out.tobytes() == array.tobytes()

    def test_decoded_array_is_writable(self):
        out = roundtrip(np.arange(3.0))
        out[0] = 42.0  # frombuffer gives read-only memory; codec must copy
        assert out[0] == 42.0

    @given(hnp.arrays(dtype=st.sampled_from([np.float64, np.int64, np.int8]),
                      shape=hnp.array_shapes(max_dims=2, max_side=8)))
    def test_roundtrip_property(self, array):
        out = roundtrip(array)
        assert out.dtype == array.dtype
        assert out.tobytes() == array.tobytes()


class TestStructures:
    def test_nested(self):
        state = {"a": [1, {"b": np.arange(3), "c": float("nan")}], "d": None}
        out = roundtrip(state)
        np.testing.assert_array_equal(out["a"][1]["b"], np.arange(3))
        assert np.isnan(out["a"][1]["c"])

    def test_tuples_become_lists(self):
        assert roundtrip((1, 2)) == [1, 2]

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            encode_state({1: "x"})

    def test_dunder_keys_rejected(self):
        with pytest.raises(TypeError, match="collides"):
            encode_state({"__ndarray__": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_state(object())

    def test_decode_is_inverse_on_plain_json(self):
        payload = {"plain": [1, 2.5, "x", None, True]}
        assert decode_state(payload) == payload


class TestRNGState:
    def test_pcg64_roundtrip_resumes_stream(self):
        rng = np.random.default_rng(123)
        rng.random(100)
        state = roundtrip(rng_state_dict(rng))
        clone = rng_from_state_dict(state)
        np.testing.assert_array_equal(clone.random(50), rng.random(50))

    def test_mt19937_roundtrip(self):
        # MT19937 state embeds a uint32 key array — the codec must carry it.
        rng = np.random.Generator(np.random.MT19937(7))
        rng.random(10)
        clone = rng_from_state_dict(roundtrip(rng_state_dict(rng)))
        np.testing.assert_array_equal(clone.random(5), rng.random(5))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown bit generator"):
            rng_from_state_dict({"bit_generator": "os", "state": {}})


class TestBinaryCodec:
    """The compact binary codec must be interchangeable with JSON.

    Contract: ``load_state_binary(dump_state_binary(x))`` equals
    ``load_state(dump_state(x))`` for every ``x`` either form accepts —
    a journal may mix shards of both codecs and replay identically.
    """

    CASES = [
        None, True, False, 0, -17, 2**100 + 1, -(2**100 + 1), "text",
        3.25, float("inf"), float("-inf"),
        {"a": [1, {"b": 2.5}], "d": None},
        [[], {}, "", 0.0, -0.0],
    ]

    @pytest.mark.parametrize("value", CASES)
    def test_matches_json_codec(self, value):
        assert equal_decoded(binary_roundtrip(value), roundtrip(value))

    def test_nan_payload_bits_survive(self):
        assert np.isnan(binary_roundtrip(float("nan")))
        array = np.array([np.nan, -0.0, np.inf, -np.inf, 1e-308])
        out = binary_roundtrip(array)
        assert out.tobytes() == array.tobytes()

    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64", "int8",
                                       "uint32", "bool"])
    def test_array_dtype_and_shape(self, dtype):
        array = np.array([[0, 1], [1, 0], [1, 1]], dtype=dtype)
        out = binary_roundtrip(array)
        assert out.dtype == array.dtype and out.shape == array.shape
        np.testing.assert_array_equal(out, array)
        assert out.flags.writeable

    def test_accepts_pre_encoded_trees(self):
        # WAL writers hand over already-encoded events; both the raw
        # object and its encode_state() tree must serialise identically.
        state = {"x": np.arange(4.0), "n": 2**80, "f": float("nan")}
        assert (dump_state_binary(state)
                == dump_state_binary(encode_state(state)))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            load_state_binary(b"NOPE" + dump_state_binary(1)[4:])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            load_state_binary(dump_state_binary({"a": 1}) + b"\x00")

    def test_truncated_record_rejected(self):
        data = dump_state_binary({"a": np.arange(10.0)})
        with pytest.raises((ValueError, IndexError, EOFError)):
            load_state_binary(data[:-3])

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            dump_state_binary({1: "x"})

    def test_dunder_keys_rejected(self):
        with pytest.raises(TypeError, match="collides"):
            dump_state_binary({"__ndarray__": 1})

    @given(st.floats())
    def test_floats_bit_exact_property(self, value):
        out = binary_roundtrip(value)
        assert np.float64(out).tobytes() == np.float64(value).tobytes()

    @given(hnp.arrays(dtype=st.sampled_from([np.float64, np.int64, np.int8]),
                      shape=hnp.array_shapes(max_dims=2, max_side=8)))
    def test_array_roundtrip_property(self, array):
        out = binary_roundtrip(array)
        assert out.dtype == array.dtype
        assert out.tobytes() == array.tobytes()

    def test_rng_state_resumes_stream(self):
        rng = np.random.default_rng(321)
        rng.random(64)
        clone = rng_from_state_dict(binary_roundtrip(rng_state_dict(rng)))
        np.testing.assert_array_equal(clone.random(32), rng.random(32))

    @pytest.mark.parametrize("spec", [
        "recall", "precision", {"kind": "fmeasure", "alpha": 0.25},
        {"kind": "fmeasure", "alpha": 0.5},
    ])
    def test_measure_specs_interchangeable(self, spec):
        canonical = measure_from_spec(spec).spec()
        assert binary_roundtrip(canonical) == roundtrip(canonical)


class TestBinarySnapshots:
    """Every live sampler snapshot must survive the binary form exactly."""

    @staticmethod
    def driven_session(kind: str, measure=None):
        from repro.service.session import EvaluationSession

        rng = np.random.default_rng(99)
        n = 60
        scores = rng.normal(size=n)
        predictions = (scores > 0.2).astype(np.int8)
        kwargs = {"n_strata": 5} if kind in ("oasis", "stratified", "oss") \
            else {}
        session = EvaluationSession.create(
            predictions, scores, sampler=kind, sampler_kwargs=kwargs,
            measure=measure, seed=13,
        )
        for _ in range(2):
            proposal = session.propose(6)
            labels = [int(i % 2 == 0) for i in proposal["pending"]]
            session.ingest(proposal["ticket"], labels)
        return session

    @pytest.mark.parametrize("kind", ["importance", "oasis", "oss",
                                      "passive", "stratified"])
    def test_snapshot_binary_equals_json(self, kind):
        state = self.driven_session(kind).sampler.state_dict()
        assert equal_decoded(binary_roundtrip(state), roundtrip(state))

    def test_measure_targeted_snapshot(self):
        state = self.driven_session(
            "oasis", measure="recall").sampler.state_dict()
        assert equal_decoded(binary_roundtrip(state), roundtrip(state))

    def test_migrated_v1_snapshot(self, tmp_path):
        # A v1 (pre-measure, alpha-only) journal restored by current
        # code yields a migrated snapshot; it too must be codec-neutral.
        import shutil

        from repro.service.session import EvaluationSession

        fixture = Path(__file__).parent / "fixtures" / "v1_session" / "v1session"
        target = tmp_path / "v1session"
        shutil.copytree(fixture, target)
        session = EvaluationSession.restore(target)
        state = session.sampler.state_dict()
        assert equal_decoded(binary_roundtrip(state), roundtrip(state))
