"""Equivalence suite for the measure-generic refactor (ISSUE 5).

Three guarantees are proven here:

1. **Pre-refactor bit-identity** — faithful replicas of the historical
   (alpha-threaded) estimator and instrumental formulas are compared
   *bitwise* against the measure-routed implementations, and every
   sampler run with ``measure=FMeasure(alpha)`` is bit-identical to the
   same sampler run with the deprecated ``alpha=`` shim: estimates,
   per-draw histories and RNG state.
2. **Measure consistency** — ``Precision`` / ``Recall`` agree with
   ``AISEstimator.f_measure(alpha=1.0 / 0.0)``, and one recorded run
   can be read out under every measure.
3. **Schema migration** — version-1 (alpha-only) sampler snapshots
   restore into measure-aware samplers and continue bit-identically,
   and the committed v1 session fixture still restores.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AISEstimator, OASISSampler
from repro.core.instrumental import (
    optimal_instrumental_pointwise,
    stratified_optimal_instrumental,
)
from repro.measures.ratio import (
    MEASURE_KINDS,
    Accuracy,
    FMeasure,
    Precision,
    Recall,
)
from repro.oracle import DeterministicOracle
from repro.samplers import (
    ImportanceSampler,
    OSSSampler,
    PassiveSampler,
    SemiSupervisedEstimator,
    StratifiedSampler,
)
from repro.service.codec import decode_state, dump_state, load_state
from repro.utils import normalise

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def make_pool(seed=0, n=400, positive_rate=0.1):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < positive_rate).astype(np.int8)
    scores = rng.normal(size=n) + 2.5 * labels
    predictions = (scores > 0.5).astype(np.int8)
    return predictions, scores, labels


SAMPLER_FACTORIES = {
    "oasis": lambda p, s, o, seed, **kw: OASISSampler(
        p, s, o, n_strata=8, random_state=seed, **kw),
    "passive": lambda p, s, o, seed, **kw: PassiveSampler(
        p, s, o, random_state=seed, **kw),
    "stratified": lambda p, s, o, seed, **kw: StratifiedSampler(
        p, s, o, n_strata=6, random_state=seed, **kw),
    "importance": lambda p, s, o, seed, **kw: ImportanceSampler(
        p, s, o, random_state=seed, **kw),
    "oss": lambda p, s, o, seed, **kw: OSSSampler(
        p, s, o, n_strata=6, random_state=seed, **kw),
}


# ---------------------------------------------------------------------------
# 1a. The historical estimator, replicated verbatim, against the new one.
# ---------------------------------------------------------------------------


class LegacyAISEstimator:
    """The pre-refactor F-only estimator, logic copied verbatim."""

    def __init__(self, alpha=0.5):
        self.alpha = alpha
        self._weighted_tp = 0.0
        self._weighted_pred = 0.0
        self._weighted_true = 0.0

    def update(self, label, prediction, weight=1.0):
        label = float(label)
        prediction = float(prediction)
        self._weighted_tp += weight * label * prediction
        self._weighted_pred += weight * prediction
        self._weighted_true += weight * label

    def update_batch(self, labels, predictions, weights):
        labels = np.asarray(labels, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        weights = np.asarray(weights, dtype=float)

        def running(start, contributions):
            return np.cumsum(np.concatenate([[start], contributions]))[1:]

        tp_cum = running(self._weighted_tp, weights * labels * predictions)
        pred_cum = running(self._weighted_pred, weights * predictions)
        true_cum = running(self._weighted_true, weights * labels)
        denominator = self.alpha * pred_cum + (1.0 - self.alpha) * true_cum
        with np.errstate(invalid="ignore", divide="ignore"):
            trajectory = np.where(
                denominator > 0,
                np.minimum(1.0, tp_cum / denominator),
                np.nan,
            )
        self._weighted_tp = float(tp_cum[-1])
        self._weighted_pred = float(pred_cum[-1])
        self._weighted_true = float(true_cum[-1])
        return trajectory

    def f_measure(self):
        denominator = (
            self.alpha * self._weighted_pred
            + (1.0 - self.alpha) * self._weighted_true
        )
        if denominator <= 0:
            return float("nan")
        return min(1.0, self._weighted_tp / denominator)


observation_lists = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 1), st.floats(0.0, 50.0)),
    min_size=1,
    max_size=60,
)


class TestEstimatorBitIdentity:
    @settings(max_examples=80, deadline=None)
    @given(observation_lists, st.floats(0.0, 1.0))
    def test_sequential_updates(self, observations, alpha):
        legacy = LegacyAISEstimator(alpha)
        current = AISEstimator(measure=FMeasure(alpha))
        shim = AISEstimator(alpha=alpha)
        for label, prediction, weight in observations:
            legacy.update(label, prediction, weight)
            current.update(label, prediction, weight)
            shim.update(label, prediction, weight)
            expected = legacy.f_measure()
            for estimator in (current, shim):
                got = estimator.estimate
                assert got == expected or (
                    np.isnan(got) and np.isnan(expected)
                )

    @settings(max_examples=80, deadline=None)
    @given(observation_lists, observation_lists, st.floats(0.0, 1.0))
    def test_batched_trajectories(self, first, second, alpha):
        legacy = LegacyAISEstimator(alpha)
        current = AISEstimator(alpha=alpha)
        for block in (first, second):
            labels = [o[0] for o in block]
            predictions = [o[1] for o in block]
            weights = [o[2] for o in block]
            expected = legacy.update_batch(labels, predictions, weights)
            got = current.update_batch(labels, predictions, weights)
            np.testing.assert_array_equal(got, expected)


# ---------------------------------------------------------------------------
# 1b. The historical instrumental closed forms against the measure route.
# ---------------------------------------------------------------------------


def legacy_pointwise(underlying, predictions, oracle_probabilities,
                     f_measure, alpha=0.5):
    p = np.asarray(underlying, dtype=float)
    pred = np.asarray(predictions, dtype=float)
    prob = np.clip(np.asarray(oracle_probabilities, dtype=float), 0.0, 1.0)
    if np.isnan(f_measure):
        return normalise(p)
    f = float(np.clip(f_measure, 0.0, 1.0))
    negative_term = (1.0 - alpha) * (1.0 - pred) * f * np.sqrt(prob)
    positive_term = pred * np.sqrt(
        (alpha * f) ** 2 * (1.0 - prob) + (1.0 - f) ** 2 * prob
    )
    return normalise(p * (negative_term + positive_term))


def legacy_stratified(stratum_weights, mean_predictions, pi, f_measure,
                      alpha=0.5):
    omega = np.asarray(stratum_weights, dtype=float)
    lam = np.clip(np.asarray(mean_predictions, dtype=float), 0.0, 1.0)
    pi = np.clip(np.asarray(pi, dtype=float), 0.0, 1.0)
    if np.isnan(f_measure):
        return normalise(omega)
    f = float(np.clip(f_measure, 0.0, 1.0))
    negative_term = (1.0 - alpha) * (1.0 - lam) * f * np.sqrt(pi)
    positive_term = lam * np.sqrt(
        (alpha * f) ** 2 * (1.0 - pi) + (1.0 - f) ** 2 * pi
    )
    return normalise(omega * (negative_term + positive_term))


class TestInstrumentalBitIdentity:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(2, 16),
        st.one_of(st.floats(-0.2, 1.2), st.just(float("nan"))),
        st.floats(0.0, 1.0),
        st.integers(0, 2**16),
    )
    def test_both_forms(self, k, f, alpha, seed):
        rng = np.random.default_rng(seed)
        base = normalise(rng.random(k) + 1e-3)
        binary_predictions = (rng.random(k) < 0.5).astype(float)
        mean_predictions = rng.random(k)
        probabilities = rng.random(k)
        measure = FMeasure(alpha)
        np.testing.assert_array_equal(
            optimal_instrumental_pointwise(
                base, binary_predictions, probabilities, f, measure=measure
            ),
            legacy_pointwise(
                base, binary_predictions, probabilities, f, alpha=alpha
            ),
        )
        np.testing.assert_array_equal(
            stratified_optimal_instrumental(
                base, mean_predictions, probabilities, f, measure=measure
            ),
            legacy_stratified(
                base, mean_predictions, probabilities, f, alpha=alpha
            ),
        )


# ---------------------------------------------------------------------------
# 1c. Full samplers: measure=FMeasure(alpha) versus the alpha= shim.
# ---------------------------------------------------------------------------


def assert_samplers_identical(a, b):
    np.testing.assert_array_equal(np.asarray(a.history), np.asarray(b.history))
    assert a.budget_history == b.budget_history
    assert a.sampled_indices == b.sampled_indices
    assert a.queried_labels == b.queried_labels
    assert a.rng.bit_generator.state == b.rng.bit_generator.state


@pytest.mark.parametrize("kind", sorted(SAMPLER_FACTORIES))
@pytest.mark.parametrize("batch_size", [1, 9])
@pytest.mark.parametrize("alpha", [0.0, 0.37, 1.0])
def test_sampler_measure_path_bit_identical(kind, batch_size, alpha):
    predictions, scores, labels = make_pool()
    factory = SAMPLER_FACTORIES[kind]
    via_alpha = factory(
        predictions, scores, DeterministicOracle(labels), 5, alpha=alpha
    )
    via_measure = factory(
        predictions, scores, DeterministicOracle(labels), 5,
        measure=FMeasure(alpha),
    )
    via_alpha.sample(60, batch_size=batch_size)
    via_measure.sample(60, batch_size=batch_size)
    assert_samplers_identical(via_alpha, via_measure)

    # A measure-targeted snapshot restores and continues identically.
    state = load_state(dump_state(via_measure.state_dict()))
    resumed = factory(
        predictions, scores, DeterministicOracle(labels), 99,
        measure=FMeasure(alpha),
    )
    resumed.load_state_dict(state)
    via_alpha.sample(30, batch_size=batch_size)
    resumed.sample(30, batch_size=batch_size)
    assert_samplers_identical(via_alpha, resumed)


def test_sampler_rejects_alpha_and_measure():
    predictions, scores, labels = make_pool(n=50)
    with pytest.raises(ValueError, match="not both"):
        PassiveSampler(
            predictions, scores, DeterministicOracle(labels),
            alpha=0.5, measure=Recall(),
        )


# ---------------------------------------------------------------------------
# 2. Measure consistency on shared moments.
# ---------------------------------------------------------------------------


class TestMeasureConsistency:
    @settings(max_examples=60, deadline=None)
    @given(observation_lists)
    def test_precision_recall_match_f_extremes(self, observations):
        fmeasure = AISEstimator(alpha=0.5)
        precision = AISEstimator(measure=Precision())
        recall = AISEstimator(measure=Recall())
        for label, prediction, weight in observations:
            for estimator in (fmeasure, precision, recall):
                estimator.update(label, prediction, weight)
        for shim, direct in (
            (fmeasure.f_measure(alpha=1.0), precision.estimate),
            (fmeasure.f_measure(alpha=0.0), recall.estimate),
            (fmeasure.precision, precision.estimate),
            (fmeasure.recall, recall.estimate),
        ):
            assert shim == direct or (np.isnan(shim) and np.isnan(direct))

    def test_one_run_reads_out_under_every_measure(self):
        rng = np.random.default_rng(2)
        estimator = AISEstimator(measure=Accuracy())
        labels = rng.integers(0, 2, size=200)
        predictions = rng.integers(0, 2, size=200)
        estimator.update_batch(labels, predictions)
        from repro.measures import confusion_counts

        counts = confusion_counts(labels, predictions)
        for kind, cls in MEASURE_KINDS.items():
            measure = cls()
            assert estimator.measure_value(measure) == pytest.approx(
                measure.value_from_counts(counts)
            ), kind

    def test_variance_and_ci_nan_on_zero_denominator(self):
        # All-negative sample: recall's denominator mass is zero.
        estimator = AISEstimator(measure=Recall(), track_observations=True)
        for __ in range(10):
            estimator.update(0, 1, 1.0)
        assert np.isnan(estimator.estimate)
        assert np.isnan(estimator.variance_estimate())
        assert estimator.confidence_interval() == (
            pytest.approx(float("nan"), nan_ok=True),
            pytest.approx(float("nan"), nan_ok=True),
        )

    def test_nonlinear_ci_is_bounded_and_finite(self):
        rng = np.random.default_rng(7)
        estimator = AISEstimator(
            measure="balanced_accuracy", track_observations=True
        )
        labels = rng.integers(0, 2, size=300)
        predictions = rng.integers(0, 2, size=300)
        weights = rng.random(300) + 0.5
        estimator.update_batch(labels, predictions, weights)
        low, high = estimator.confidence_interval()
        assert 0.0 <= low <= estimator.estimate <= high <= 1.0
        assert estimator.variance_estimate() > 0

    def test_nonlinear_variance_matches_linear_form_for_f(self):
        # The generic gradient form of the delta method must agree with
        # the specialised linear-ratio path on a linear measure.
        rng = np.random.default_rng(9)
        estimator = AISEstimator(alpha=0.3, track_observations=True)
        labels = rng.integers(0, 2, size=150)
        predictions = rng.integers(0, 2, size=150)
        weights = rng.random(150) + 0.1
        estimator.update_batch(labels, predictions, weights)
        linear = estimator.variance_estimate()

        measure = FMeasure(0.3)
        obs = np.asarray(estimator._observations)
        moments = measure.observation_moments(obs[:, 1], obs[:, 2], obs[:, 0])
        t = len(obs)
        mean_moments = moments.sum(axis=0) / t
        gradient = measure.moment_gradient(*mean_moments)
        influence = moments @ gradient - float(mean_moments @ gradient)
        generic = float(np.mean(influence**2) / t)
        assert linear == pytest.approx(generic, rel=1e-9)

    def test_semisupervised_measures(self):
        rng = np.random.default_rng(4)
        labels = (rng.random(600) < 0.3).astype(int)
        scores = np.clip(
            0.25 + 0.5 * labels + 0.15 * rng.normal(size=600), 0.001, 0.999
        )
        oracle = DeterministicOracle(labels)
        shim = SemiSupervisedEstimator(0.5, alpha=0.5, random_state=0)
        shim.fit(scores, oracle, 60)
        direct = SemiSupervisedEstimator(
            0.5, measure=FMeasure(0.5), random_state=0
        )
        direct.fit(scores, oracle, 60)
        assert shim.estimate == direct.estimate
        recall_target = SemiSupervisedEstimator(
            0.5, measure=Recall(), random_state=0
        )
        recall_target.fit(scores, oracle, 60)
        assert recall_target.estimate == pytest.approx(
            recall_target.recall_estimate
        )


# ---------------------------------------------------------------------------
# 3a. v1 (alpha-only) snapshot migration.
# ---------------------------------------------------------------------------


def downgrade_sampler_state(state: dict) -> dict:
    """Rewrite a v2 sampler snapshot into the historical v1 layout."""
    state = copy.deepcopy(state)
    assert state["format_version"] == 2
    state["format_version"] = 1
    measure = state.pop("measure")
    assert measure["kind"] == "fmeasure", "v1 only ever stored F targets"
    state["alpha"] = measure["alpha"]
    estimator = state.get("estimator")
    if estimator is not None:
        assert estimator["format_version"] == 2
        estimator["format_version"] = 1
        est_measure = estimator.pop("measure")
        estimator["alpha"] = est_measure["alpha"]
        estimator.pop("weighted_count", None)
    if "current_estimate" in state:
        state["current_f"] = state.pop("current_estimate")
    return state


@pytest.mark.parametrize("kind", sorted(SAMPLER_FACTORIES))
@pytest.mark.parametrize("batch_size", [1, 7])
def test_v1_snapshot_restores_and_continues(kind, batch_size):
    predictions, scores, labels = make_pool()
    factory = SAMPLER_FACTORIES[kind]

    uninterrupted = factory(predictions, scores, DeterministicOracle(labels), 5)
    uninterrupted.sample(40, batch_size=batch_size)
    uninterrupted.sample(40, batch_size=batch_size)

    donor = factory(predictions, scores, DeterministicOracle(labels), 5)
    donor.sample(40, batch_size=batch_size)
    v1_state = load_state(
        dump_state(downgrade_sampler_state(donor.state_dict()))
    )

    resumed = factory(predictions, scores, DeterministicOracle(labels), 999)
    resumed.load_state_dict(v1_state)
    resumed.sample(40, batch_size=batch_size)
    assert_samplers_identical(resumed, uninterrupted)
    assert resumed.estimate == uninterrupted.estimate or (
        np.isnan(resumed.estimate) and np.isnan(uninterrupted.estimate)
    )


def test_v1_snapshot_alpha_mismatch_still_rejected():
    predictions, scores, labels = make_pool(n=80)
    donor = PassiveSampler(
        predictions, scores, DeterministicOracle(labels), alpha=0.5,
        random_state=0,
    )
    donor.sample(5)
    v1_state = downgrade_sampler_state(donor.state_dict())
    other = PassiveSampler(
        predictions, scores, DeterministicOracle(labels), alpha=0.7,
        random_state=0,
    )
    with pytest.raises(ValueError, match="alpha"):
        other.load_state_dict(v1_state)


def test_v1_snapshot_into_non_f_target_rejected():
    predictions, scores, labels = make_pool(n=80)
    donor = PassiveSampler(
        predictions, scores, DeterministicOracle(labels), random_state=0
    )
    donor.sample(5)
    v1_state = downgrade_sampler_state(donor.state_dict())
    recall_sampler = PassiveSampler(
        predictions, scores, DeterministicOracle(labels), measure=Recall(),
        random_state=0,
    )
    with pytest.raises(ValueError, match="measure"):
        recall_sampler.load_state_dict(v1_state)


# ---------------------------------------------------------------------------
# 3b. The committed v1 session fixture (a PR-4-era journal directory).
# ---------------------------------------------------------------------------


def test_v1_session_fixture_restores(tmp_path):
    from repro.service.session import EvaluationSession

    fixture = FIXTURES / "v1_session"
    sidecar = json.loads((fixture / "fixture.json").read_text())
    session_dir = tmp_path / sidecar["session_id"]
    import shutil

    shutil.copytree(fixture / sidecar["session_id"], session_dir)

    session = EvaluationSession.restore(session_dir)
    assert session.sampler.measure == FMeasure(sidecar["alpha"])
    assert session.estimate == pytest.approx(sidecar["estimate_at_restore"])

    # Continue the restored session and compare against the in-process
    # oracle-driven run over the full schedule.
    labels = np.asarray(sidecar["true_labels"], dtype=np.int64)
    extra = sidecar["extra_batches"]
    for __ in range(extra):
        proposal = session.propose(sidecar["batch_size"])
        session.ingest(
            proposal["ticket"],
            [int(labels[i]) for i in proposal["pending"]],
        )

    reference = OASISSampler(
        decode_state(sidecar["predictions"]),
        decode_state(sidecar["scores"]),
        DeterministicOracle(labels),
        n_strata=sidecar["n_strata"],
        random_state=sidecar["seed"],
    )
    for __ in range(sidecar["batches_driven"] + extra):
        reference.sample_batch(sidecar["batch_size"])
    assert session.estimate == reference.estimate
    assert session.labels_consumed == reference.labels_consumed


# ---------------------------------------------------------------------------
# 4. Acceptance: a recall-targeted OASIS run reallocates and converges.
# ---------------------------------------------------------------------------


class TestRecallTargetedOASIS:
    def test_instrumental_reallocates_and_estimate_converges(self):
        predictions, scores, labels = make_pool(seed=1, n=3000)
        from repro.measures import recall as true_recall_fn

        true_recall = true_recall_fn(labels, predictions)

        f_run = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            n_strata=12, random_state=7,
        )
        recall_run = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            n_strata=12, measure=Recall(), random_state=7,
        )
        # The optimal designs differ from the very first draw: the
        # recall gradient puts no mass on false-positive risk.
        divergence = np.abs(
            f_run.instrumental_distribution()
            - recall_run.instrumental_distribution()
        ).max()
        assert divergence > 1e-3

        recall_run.sample_until_budget(700)
        assert recall_run.estimate == pytest.approx(true_recall, abs=0.05)
        assert recall_run.labels_consumed == 700

    def test_accuracy_target_converges(self):
        predictions, scores, labels = make_pool(seed=2, n=2000)
        from repro.measures import confusion_counts

        true_accuracy = Accuracy().value_from_counts(
            confusion_counts(labels, predictions)
        )
        run = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            n_strata=10, measure="accuracy", random_state=3,
        )
        run.sample_until_budget(500)
        assert run.estimate == pytest.approx(true_accuracy, abs=0.05)

    def test_session_create_rejects_alpha_and_measure(self):
        from repro.service.session import EvaluationSession

        predictions, scores, labels = make_pool(seed=3, n=60)
        with pytest.raises(ValueError, match="not both"):
            EvaluationSession.create(
                predictions, scores, sampler="oasis",
                alpha=0.25, measure="fmeasure", seed=1,
            )
        # Manifests record exactly one target parametrisation.
        measured = EvaluationSession.create(
            predictions, scores, sampler="oasis", measure="recall", seed=1,
        )
        assert "alpha" not in measured.config
        legacy = EvaluationSession.create(
            predictions, scores, sampler="oasis", alpha=0.25, seed=1,
        )
        assert "measure" not in legacy.config
        assert legacy.config["alpha"] == 0.25

    def test_tn_measures_estimable_from_all_negative_samples(self):
        # The stratified plug-ins' cold-start NaN is a positive-class
        # notion: specificity/accuracy must stay estimable on a pool
        # whose sampled labels are all negative, while the F family
        # keeps its historical NaN.
        rng = np.random.default_rng(5)
        n = 200
        labels = np.zeros(n, dtype=np.int8)
        scores = rng.normal(size=n)
        predictions = (scores > 0.3).astype(np.int8)
        from repro.measures import Specificity, confusion_counts

        true_specificity = Specificity().value_from_counts(
            confusion_counts(labels, predictions)
        )
        for cls in (StratifiedSampler, OSSSampler):
            targeted = cls(
                predictions, scores, DeterministicOracle(labels),
                n_strata=5, measure="specificity", random_state=0,
            )
            targeted.sample_until_budget(100)
            assert targeted.estimate == pytest.approx(
                true_specificity, abs=0.15
            ), cls.__name__
            legacy = cls(
                predictions, scores, DeterministicOracle(labels),
                n_strata=5, random_state=0,
            )
            legacy.sample_until_budget(100)
            assert np.isnan(legacy.estimate), cls.__name__

    def test_session_hosts_recall_target(self, tmp_path):
        from repro.service.session import EvaluationSession

        predictions, scores, labels = make_pool(seed=3, n=500)
        session = EvaluationSession.create(
            predictions, scores, sampler="oasis",
            sampler_kwargs={"n_strata": 6}, measure="recall", seed=13,
            directory=tmp_path / "recall-session",
        )
        for __ in range(4):
            proposal = session.propose(16)
            session.ingest(
                proposal["ticket"],
                [int(labels[i]) for i in proposal["pending"]],
            )
        assert session.status()["measure"] == "recall"

        reference = OASISSampler(
            predictions, scores, DeterministicOracle(labels),
            n_strata=6, measure=Recall(), random_state=13,
        )
        for __ in range(4):
            reference.sample_batch(16)
        assert session.estimate == reference.estimate

        restored = EvaluationSession.restore(tmp_path / "recall-session")
        assert restored.sampler.measure == Recall()
        assert restored.estimate == session.estimate


# ---------------------------------------------------------------------------
# 5. The sweep measure axis.
# ---------------------------------------------------------------------------


class TestSweepMeasureAxis:
    def test_default_grid_is_unchanged(self):
        from repro.experiments.sweep import SweepConfig, expand_grid

        config = SweepConfig(batch_sizes=[1, 8])
        jobs = expand_grid(config)
        assert [job.job_id for job in jobs] == [
            "abt_buy__deterministic__b1",
            "abt_buy__deterministic__b8",
        ]
        assert all(job.measure is None for job in jobs)
        assert "measures" not in config.to_dict()

    def test_measure_axis_expands_and_round_trips(self):
        from repro.experiments.sweep import SweepConfig, expand_grid

        config = SweepConfig(measures=["fmeasure", "recall"])
        jobs = expand_grid(config)
        assert [job.job_id for job in jobs] == [
            "abt_buy__deterministic__b1__m-fmeasure-alpha-0.5",
            "abt_buy__deterministic__b1__m-recall",
        ]
        payload = config.to_dict()
        assert payload["measures"] == [
            {"kind": "fmeasure", "alpha": 0.5},
            {"kind": "recall"},
        ]
        clone = SweepConfig.from_dict(json.loads(json.dumps(payload)))
        assert [job.job_id for job in expand_grid(clone)] == [
            job.job_id for job in jobs
        ]

    def test_run_trials_reports_measure_true_value(self):
        from repro.datasets import load_benchmark
        from repro.experiments.runner import run_trials
        from repro.experiments.specs import make_sampler_spec

        pool = load_benchmark("abt_buy", scale="tiny", random_state=42)
        specs = [make_sampler_spec("passive", name="Passive")]
        results = run_trials(
            pool, specs, budgets=[40], n_repeats=2, measure="recall",
            random_state=0,
        )
        assert results["Passive"].true_value == pytest.approx(
            pool.performance["recall"]
        )

    def test_cell_pin_conflicting_with_run_measure_is_loud(self):
        from repro.experiments.specs import make_sampler_spec

        predictions, scores, labels = make_pool(n=60)
        spec = make_sampler_spec("passive", name="Passive", alpha=0.5)
        with pytest.raises(ValueError, match="pins"):
            spec.factory(
                predictions, scores, DeterministicOracle(labels),
                np.random.default_rng(0), measure="recall",
            )
        # An agreeing pin is allowed.
        sampler = spec.factory(
            predictions, scores, DeterministicOracle(labels),
            np.random.default_rng(0), measure={"kind": "fmeasure", "alpha": 0.5},
        )
        assert sampler.measure == FMeasure(0.5)

    def test_cli_accepts_measure(self, capsys):
        from repro.experiments.cli import main

        main([
            "compare", "--dataset", "abt_buy", "--scale", "tiny",
            "--budget", "40", "--repeats", "2", "--n-strata", "6",
            "--measure", "recall",
        ])
        out = capsys.readouterr().out
        assert "true recall" in out
