"""Golden tests for the convergence-report generator.

The committed fixture (``tests/fixtures/report_sweep/``, regenerated
by ``tests/fixtures/make_report_fixture.py``) is a seeded mini-run of
``run_trials``.  The report over it must be **deterministic** (two
renders are byte-identical), its JSON data island must round-trip the
stored estimates **bitwise**, and those estimates must equal what
``estimate_at_budgets`` produces when the same seeded run is executed
fresh — i.e. the report shows the exact trajectory the estimator
computed, not a lossy re-derivation.
"""

from __future__ import annotations

import importlib.util
import json
import math
import re
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.report import (
    collect_series_from_server,
    collect_series_from_store,
    render_report_html,
    render_report_markdown,
    write_report,
)

HERE = Path(__file__).resolve().parent
FIXTURE = HERE / "fixtures" / "report_sweep"

_ISLAND = re.compile(
    r'<script type="application/json" id="report-data">(.*?)</script>',
    re.DOTALL)
_FENCE = re.compile(r"```json\n(.*?)\n```", re.DOTALL)


def _fixture_module():
    spec = importlib.util.spec_from_file_location(
        "make_report_fixture", HERE / "fixtures" / "make_report_fixture.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def html_island(text: str) -> dict:
    (blob,) = _ISLAND.findall(text)
    return json.loads(blob.replace("<\\/", "</"))


def markdown_island(text: str) -> dict:
    (blob,) = _FENCE.findall(text)
    return json.loads(blob)


@pytest.fixture(scope="module")
def series():
    return collect_series_from_store(FIXTURE)


class TestFixtureCollection:
    def test_fixture_yields_both_specs(self, series):
        assert [entry["name"] for entry in series] == [
            "report_sweep/OASIS", "report_sweep/Passive"]
        for entry in series:
            assert entry["budgets"] == [20, 40, 60, 80]
            assert entry["n_repeats"] == 4
            assert entry["true_value"] is not None

    def test_shard_fallback_matches_results_json(self, series, tmp_path):
        # Strip results.json: collection must rebuild the same rows
        # from the raw checkpoint shards.
        import shutil
        clone = tmp_path / "report_sweep"
        shutil.copytree(FIXTURE, clone)
        (clone / "results.json").unlink()
        from_shards = collect_series_from_store(clone)
        assert [e["name"] for e in from_shards] == [
            e["name"] for e in series]
        for a, b in zip(from_shards, series):
            assert a["rows"] == b["rows"]
            assert a["mean"] == b["mean"]

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_series_from_store(tmp_path / "nope")


class TestDeterminism:
    def test_html_renders_byte_identical(self):
        first = render_report_html(collect_series_from_store(FIXTURE))
        second = render_report_html(collect_series_from_store(FIXTURE))
        assert first == second

    def test_markdown_renders_byte_identical(self):
        first = render_report_markdown(collect_series_from_store(FIXTURE))
        second = render_report_markdown(collect_series_from_store(FIXTURE))
        assert first == second

    def test_both_formats_embed_the_same_payload(self, series):
        html_payload = html_island(render_report_html(series))
        md_payload = markdown_island(render_report_markdown(series))
        assert html_payload == md_payload


class TestBitwiseFidelity:
    def test_island_round_trips_stored_estimates_bitwise(self, series):
        """Data island floats == the shard files' floats, exactly."""
        island = html_island(render_report_html(series))
        stored = json.loads((FIXTURE / "results.json").read_text())
        for entry in island["series"]:
            spec = entry["name"].split("/", 1)[1]
            n_repeats, n_budgets = stored[spec]["estimates_shape"]
            flat = stored[spec]["estimates"]
            rows = [flat[i * n_budgets:(i + 1) * n_budgets]
                    for i in range(n_repeats)]
            assert entry["rows"] == rows  # bitwise: == on floats
            assert entry["true_value"] == stored[spec]["true_value"]

    def test_fixture_matches_fresh_estimate_at_budgets(self):
        """The committed trajectories are exactly what a fresh seeded
        run of the estimator produces — budget column by budget
        column, bit for bit."""
        from repro.experiments import run_trials

        module = _fixture_module()
        pool = module.make_pool()
        specs = [
            module.SamplerSpec(
                "OASIS",
                lambda p, s, o, r, **kw: module.OASISSampler(
                    p, s, o, random_state=r)),
            module.SamplerSpec(
                "Passive",
                lambda p, s, o, r, **kw: module.PassiveSampler(
                    p, s, o, random_state=r)),
        ]
        fresh = run_trials(
            pool, specs, budgets=list(module.BUDGETS),
            n_repeats=module.N_REPEATS, batch_size=module.BATCH_SIZE,
            random_state=module.RUN_SEED)
        island = html_island(render_report_html(
            collect_series_from_store(FIXTURE)))
        for entry in island["series"]:
            spec = entry["name"].split("/", 1)[1]
            expected = fresh[spec].estimates
            got = np.array(
                [[math.nan if v is None else v for v in row]
                 for row in entry["rows"]])
            np.testing.assert_array_equal(got, expected)

    def test_ci_trajectory_matches_rows_bitwise(self, series):
        """mean/std/CI columns are pure functions of the rows, with no
        float drift between summary and data."""
        z = 1.959963984540054
        for entry in series:
            for column in range(len(entry["budgets"])):
                values = [row[column] for row in entry["rows"]
                          if row[column] is not None]
                assert entry["count"][column] == len(values)
                mean = sum(values) / len(values)
                assert entry["mean"][column] == mean
                variance = sum((v - mean) ** 2 for v in values) / (
                    len(values) - 1)
                std = math.sqrt(variance)
                assert entry["std"][column] == std
                half = z * std / math.sqrt(len(values))
                assert entry["ci_low"][column] == mean - half
                assert entry["ci_high"][column] == mean + half


class TestWriteReport:
    def test_writes_requested_formats(self, series, tmp_path):
        paths = write_report(series, tmp_path / "out")
        assert [p.name for p in paths] == ["report.html", "report.md"]
        html = paths[0].read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert html_island(html)["series"]

    def test_single_format_and_title(self, series, tmp_path):
        (path,) = write_report(series, tmp_path / "out", formats=("md",),
                               title="My sweep")
        assert path.name == "report.md"
        assert path.read_text(encoding="utf-8").startswith("# My sweep")

    def test_unknown_format_raises(self, series, tmp_path):
        with pytest.raises(ValueError, match="unknown report format"):
            write_report(series, tmp_path / "out", formats=("pdf",))


class TestCli:
    def test_report_command_renders_fixture(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["report", "--store", str(FIXTURE),
                     "--out", str(tmp_path / "r")]) == 0
        out = capsys.readouterr().out
        assert "report.html" in out and "report.md" in out
        assert (tmp_path / "r" / "report.html").is_file()
        assert (tmp_path / "r" / "report.md").is_file()

    def test_empty_store_exits_with_message(self, tmp_path):
        from repro.experiments.cli import main

        (tmp_path / "empty").mkdir()
        with pytest.raises(SystemExit, match="no convergence series"):
            main(["report", "--store", str(tmp_path / "empty"),
                  "--out", str(tmp_path / "r")])


class TestServerMode:
    def test_collects_live_session_history(self, tmp_path):
        import threading

        from repro.service import SessionManager
        from repro.service.http import make_server

        rng = np.random.default_rng(23)
        labels = (rng.random(120) < 0.25).astype(np.int8)
        scores = rng.normal(size=120) + 1.5 * labels
        predictions = (scores > 0.5).astype(np.int8)

        manager = SessionManager(tmp_path / "root")
        server = make_server(manager, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            session = manager.create_session(
                predictions.tolist(), scores.tolist(),
                sampler="oasis", seed=3, session_id="live1")
            for _ in range(3):
                proposal = session.propose(5)
                session.ingest(
                    proposal["ticket"],
                    [int(labels[i]) for i in proposal["pending"]])
            url = f"http://127.0.0.1:{server.server_address[1]}"
            series = collect_series_from_server(url)
        finally:
            server.shutdown()
            server.server_close()

        (entry,) = series
        assert entry["name"] == "live1"
        assert entry["source"] == "server"
        assert entry["n_repeats"] == 1
        # single trajectory: the mean IS the history
        assert entry["mean"] == [None if v is None else v
                                 for v in entry["rows"][0]]
        assert entry["final"]["labels_consumed"] > 0
        assert "estimate" in entry["final"]
        # and it renders
        html = render_report_html(series, title="Live")
        assert "live1" in html
