"""Tests for the from-scratch classifiers."""

import numpy as np
import pytest

from repro.classifiers import (
    AdaBoostClassifier,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    PlattCalibrator,
    RBFSampler,
    RbfSVM,
    StandardScaler,
    train_test_split,
)


def linearly_separable(n=200, d=3, seed=0, margin=1.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (X @ w > 0).astype(np.int8)
    X += margin * np.outer(2.0 * y - 1.0, w / np.linalg.norm(w))
    return X, y


def xor_data(n=400, seed=0):
    """Non-linearly separable 2-D XOR-style data."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int8)
    return X, y


ALL_CLASSIFIERS = [
    lambda: LinearSVM(random_state=0),
    lambda: LogisticRegression(),
    lambda: MLPClassifier(random_state=0, n_epochs=60),
    lambda: AdaBoostClassifier(n_estimators=30),
    lambda: RbfSVM(random_state=0),
]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
class TestCommonBehaviour:
    def test_separable_data_high_accuracy(self, factory):
        X, y = linearly_separable()
        model = factory().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_decision_function_shape(self, factory):
        X, y = linearly_separable(n=80)
        model = factory().fit(X, y)
        assert model.decision_function(X).shape == (80,)

    def test_rejects_single_class(self, factory):
        X = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(ValueError, match="both classes"):
            factory().fit(X, np.zeros(10, dtype=int))

    def test_rejects_non_binary_labels(self, factory):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.arange(10)
        with pytest.raises(ValueError):
            factory().fit(X, y)

    def test_rejects_mismatched_lengths(self, factory):
        X = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(ValueError):
            factory().fit(X, np.array([0, 1]))


class TestLinearSVM:
    def test_margins_are_signed_distances(self):
        X, y = linearly_separable()
        model = LinearSVM(random_state=0).fit(X, y)
        margins = model.decision_function(X)
        # Positive class should sit on the positive side on average.
        assert margins[y == 1].mean() > 0 > margins[y == 0].mean()

    def test_seed_reproducibility(self):
        X, y = linearly_separable()
        m1 = LinearSVM(random_state=3).fit(X, y)
        m2 = LinearSVM(random_state=3).fit(X, y)
        np.testing.assert_allclose(m1.coef_, m2.coef_)

    def test_balanced_weighting_helps_imbalance(self):
        rng = np.random.default_rng(0)
        n_pos, n_neg = 15, 600
        X = np.vstack(
            [rng.normal(1.2, 1.0, size=(n_pos, 2)), rng.normal(-1.2, 1.0, size=(n_neg, 2))]
        )
        y = np.concatenate([np.ones(n_pos, dtype=int), np.zeros(n_neg, dtype=int)])
        balanced = LinearSVM(random_state=0, class_weight="balanced").fit(X, y)
        recall = balanced.predict(X)[y == 1].mean()
        assert recall > 0.7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearSVM(reg=0.0)
        with pytest.raises(ValueError):
            LinearSVM(n_epochs=0)
        with pytest.raises(ValueError):
            LinearSVM(class_weight="bogus")


class TestLogisticRegression:
    def test_probabilities_in_unit_interval(self):
        X, y = linearly_separable()
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_probabilities_roughly_calibrated(self):
        # On logistic-generated data the fitted probabilities should
        # track empirical frequencies.
        rng = np.random.default_rng(1)
        X = rng.normal(size=(5000, 2))
        true_w = np.array([1.5, -1.0])
        p = 1.0 / (1.0 + np.exp(-(X @ true_w)))
        y = (rng.random(5000) < p).astype(np.int8)
        model = LogisticRegression(reg=1e-6).fit(X, y)
        probs = model.predict_proba(X)
        bucket = (probs > 0.4) & (probs < 0.6)
        assert y[bucket].mean() == pytest.approx(probs[bucket].mean(), abs=0.07)

    def test_newton_converges_quickly(self):
        X, y = linearly_separable(n=100)
        model = LogisticRegression().fit(X, y)
        assert model.n_iter_ <= 100

    def test_regularisation_shrinks_weights(self):
        X, y = linearly_separable()
        small = LogisticRegression(reg=1e-6).fit(X, y)
        large = LogisticRegression(reg=10.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)


class TestMLP:
    def test_solves_xor(self):
        X, y = xor_data()
        model = MLPClassifier(hidden_units=16, n_epochs=300, random_state=0)
        model.fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_hidden_units_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_units=0)

    def test_predict_proba_range(self):
        X, y = linearly_separable(n=100)
        model = MLPClassifier(random_state=0, n_epochs=30).fit(X, y)
        probs = model.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))


class TestAdaBoost:
    def test_solves_interval(self):
        # Positive iff |x0| < 0.5: not linearly separable, but boosting
        # composes stumps into the interval.  (XOR parity, by contrast,
        # is the canonical slow case for stump boosting.)
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = (np.abs(X[:, 0]) < 0.5).astype(np.int8)
        model = AdaBoostClassifier(n_estimators=60).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_margin_range(self):
        X, y = linearly_separable(n=100)
        model = AdaBoostClassifier(n_estimators=20).fit(X, y)
        margins = model.decision_function(X)
        assert np.all(np.abs(margins) <= 1.0 + 1e-9)

    def test_more_estimators_no_worse_on_train(self):
        X, y = xor_data(n=200, seed=2)
        few = AdaBoostClassifier(n_estimators=5).fit(X, y)
        many = AdaBoostClassifier(n_estimators=80).fit(X, y)
        acc_few = (few.predict(X) == y).mean()
        acc_many = (many.predict(X) == y).mean()
        assert acc_many >= acc_few - 0.02

    def test_estimator_validation(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)


class TestRbfSVM:
    def test_solves_xor(self):
        X, y = xor_data()
        model = RbfSVM(n_components=300, random_state=0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.85

    def test_beats_linear_on_xor(self):
        X, y = xor_data(seed=3)
        linear = LinearSVM(random_state=0).fit(X, y)
        rbf = RbfSVM(n_components=300, random_state=0).fit(X, y)
        acc_linear = (linear.predict(X) == y).mean()
        acc_rbf = (rbf.predict(X) == y).mean()
        assert acc_rbf > acc_linear + 0.15

    def test_explicit_gamma(self):
        X, y = linearly_separable(n=100)
        model = RbfSVM(gamma=0.5, random_state=0).fit(X, y)
        assert model.decision_function(X).shape == (100,)


class TestRBFSampler:
    def test_kernel_approximation(self):
        # Inner products of mapped features approximate the RBF kernel.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        gamma = 0.7
        sampler = RBFSampler(gamma=gamma, n_components=4000, random_state=0)
        Z = sampler.fit_transform(X)
        approx = Z @ Z.T
        sq_dists = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
        exact = np.exp(-gamma * sq_dists)
        assert np.abs(approx - exact).max() < 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            RBFSampler(gamma=-1.0)
        with pytest.raises(ValueError):
            RBFSampler(n_components=0)


class TestPlattCalibrator:
    def test_calibrated_probabilities_track_frequency(self):
        X, y = linearly_separable(n=600, margin=0.3, seed=5)
        model = PlattCalibrator(LinearSVM(random_state=0), random_state=0).fit(X, y)
        probs = model.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))
        # High-probability bucket should contain mostly positives.
        confident = probs > 0.8
        if confident.any():
            assert y[confident].mean() > 0.7

    def test_monotone_in_margin(self):
        X, y = linearly_separable(n=300)
        model = PlattCalibrator(LinearSVM(random_state=0), random_state=0).fit(X, y)
        margins = model.decision_function(X)
        probs = model.predict_proba(X)
        order = np.argsort(margins)
        assert np.all(np.diff(probs[order]) >= -1e-12)

    def test_predict_uses_half_threshold(self):
        X, y = linearly_separable(n=200)
        model = PlattCalibrator(LinearSVM(random_state=0), random_state=0).fit(X, y)
        preds = model.predict(X)
        np.testing.assert_array_equal(preds, (model.predict_proba(X) >= 0.5).astype(np.int8))

    def test_fold_validation(self):
        with pytest.raises(ValueError, match="n_folds"):
            PlattCalibrator(LinearSVM(), n_folds=1)

    def test_handles_extreme_imbalance_folds(self):
        # Few positives: some folds may miss the positive class; the
        # calibrator must still fit.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = np.zeros(100, dtype=int)
        y[:4] = 1
        X[:4] += 3.0
        model = PlattCalibrator(LinearSVM(random_state=0), random_state=0).fit(X, y)
        assert np.all(np.isfinite(model.predict_proba(X)))


class TestInfrastructure:
    def test_scaler_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_scaler_constant_column(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_split_partition(self):
        train, test = train_test_split(100, 0.3, random_state=0)
        assert len(train) + len(test) == 100
        assert len(np.intersect1d(train, test)) == 0

    def test_split_fraction_bounds(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)
        with pytest.raises(ValueError):
            train_test_split(10, 1.0)

    def test_split_never_empty(self):
        train, test = train_test_split(2, 0.01, random_state=0)
        assert len(train) >= 1
        assert len(test) >= 1
