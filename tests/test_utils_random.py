"""Tests for RNG coercion and spawning."""

import numpy as np
import pytest

from repro.utils import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(3)).random(3)
        b = ensure_rng(3).random(3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="random_state"):
            ensure_rng("seed")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_children_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_deterministic_from_seed(self):
        a = [g.random(3).tolist() for g in spawn_rngs(11, 2)]
        b = [g.random(3).tolist() for g in spawn_rngs(11, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(5)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2
        assert all(isinstance(c, np.random.Generator) for c in children)
