"""Tests for structured logging: format, levels, request-id binding."""

from __future__ import annotations

import io
import json

import pytest

from repro.utils.logging import (
    LOG_LEVELS,
    StructuredLogger,
    bind_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    logging_config,
)


@pytest.fixture
def capture():
    """Route logs to a buffer for the test, then restore the defaults."""
    saved = logging_config()
    buffer = io.StringIO()
    configure_logging("json", "debug", stream=buffer)
    yield buffer
    configure_logging(saved["format"], saved["level"], stream=None)


def events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in
            buffer.getvalue().splitlines() if line]


class TestConfiguration:
    def test_defaults_are_quiet_text(self):
        config = logging_config()
        assert config["format"] in ("json", "text")
        assert config["level"] in LOG_LEVELS

    def test_invalid_format_raises(self):
        with pytest.raises(ValueError, match="log format"):
            configure_logging("xml")

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError, match="log level"):
            configure_logging(log_level="chatty")

    def test_none_leaves_settings_alone(self, capture):
        before = logging_config()
        configure_logging(None, None)
        assert logging_config() == before


class TestJsonEvents:
    def test_event_carries_structure(self, capture):
        get_logger("shard", shard=3).info("shard_started", port=1234)
        (event,) = events(capture)
        assert event["component"] == "shard"
        assert event["event"] == "shard_started"
        assert event["shard"] == 3
        assert event["port"] == 1234
        assert event["level"] == "info"
        assert event["ts"].endswith("Z")

    def test_level_filtering(self, capture):
        configure_logging(log_level="warning")
        log = get_logger("x")
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud")
        log.error("loud")
        assert [e["level"] for e in events(capture)] == ["warning", "error"]

    def test_bound_fields_ride_every_event(self, capture):
        log = get_logger("mgr").bind(session="s1")
        log.info("a")
        log.info("b", session="s2")  # per-call overrides bound
        first, second = events(capture)
        assert first["session"] == "s1"
        assert second["session"] == "s2"

    def test_none_valued_fields_are_dropped(self, capture):
        get_logger("x").info("e", missing=None, present=0)
        (event,) = events(capture)
        assert "missing" not in event
        assert event["present"] == 0

    def test_bind_returns_new_logger(self):
        base = get_logger("x")
        bound = base.bind(shard=1)
        assert isinstance(bound, StructuredLogger)
        assert bound is not base
        assert base.bound == {}


class TestRequestIdContext:
    def test_bound_request_id_joins_events(self, capture):
        token = bind_request_id("deadbeef")
        try:
            assert current_request_id() == "deadbeef"
            get_logger("http").info("request")
        finally:
            token.var.reset(token)
        (event,) = events(capture)
        assert event["request_id"] == "deadbeef"

    def test_unbound_context_has_no_request_id(self, capture):
        assert current_request_id() is None
        get_logger("http").info("request")
        (event,) = events(capture)
        assert "request_id" not in event

    def test_reset_restores_previous_binding(self):
        outer = bind_request_id("outer")
        inner = bind_request_id("inner")
        assert current_request_id() == "inner"
        inner.var.reset(inner)
        assert current_request_id() == "outer"
        outer.var.reset(outer)
        assert current_request_id() is None


class TestTextFormat:
    def test_text_line_is_key_value(self, capture):
        configure_logging("text")
        get_logger("http").info("served", status=200, took=0.12345678)
        line = capture.getvalue().strip()
        assert " INFO " in line
        assert "http served" in line
        assert "status=200" in line
        assert "took=0.123457" in line  # floats render %.6g

    def test_closed_stream_is_swallowed(self):
        saved = logging_config()
        buffer = io.StringIO()
        configure_logging("text", "debug", stream=buffer)
        try:
            buffer.close()
            get_logger("x").info("after_close")  # must not raise
        finally:
            configure_logging(saved["format"], saved["level"], stream=None)
