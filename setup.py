"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517
editable installs (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` use the
classic ``setup.py develop`` path instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
