"""Batched sampling: the same OASIS estimate, an order of magnitude faster.

The batched engine freezes the instrumental distribution for a block of
B draws and vectorises everything inside the block — stratum choices,
within-stratum draws, the (deduplicated) oracle round-trip, and the
posterior/estimator updates.  A batch of one is bit-identical to the
sequential path; larger blocks trade per-draw adaptivity for wall-clock
speed.

Run:  PYTHONPATH=src python examples/batched_sampling.py
"""

import time

from repro import DeterministicOracle, OASISSampler, load_benchmark

BUDGET = 1000


def build_sampler(pool):
    return OASISSampler(
        pool.predictions,
        pool.scores_calibrated,
        DeterministicOracle(pool.true_labels),
        random_state=0,
    )


def main():
    pool = load_benchmark("cora", scale="small", random_state=42)
    true_f = pool.performance["f_measure"]
    print(f"pool: {len(pool)} record pairs, true F = {true_f:.4f}\n")

    print(f"{'mode':>14s} {'estimate':>9s} {'|error|':>8s} "
          f"{'labels':>7s} {'time':>9s}")
    for batch_size in [1, 16, 64, 256]:
        sampler = build_sampler(pool)
        start = time.perf_counter()
        sampler.sample_until_budget(BUDGET, batch_size=batch_size)
        elapsed = time.perf_counter() - start
        mode = "sequential" if batch_size == 1 else f"batch B={batch_size}"
        print(f"{mode:>14s} {sampler.estimate:9.4f} "
              f"{abs(sampler.estimate - true_f):8.4f} "
              f"{sampler.labels_consumed:7d} {elapsed * 1e3:7.1f} ms")

    print("\nEvery mode targets the same estimand; batching only changes "
          "how often\nthe proposal is refreshed (and how fast the loop runs).")


if __name__ == "__main__":
    main()
