"""Confidence intervals for OASIS estimates (extension).

The library augments the paper's point estimates with delta-method
confidence intervals on the importance-weighted ratio estimator.  This
example tracks the interval as the label budget grows and checks its
empirical coverage over repeated runs.

Run:  python examples/confidence_intervals.py
"""

import numpy as np

from repro import DeterministicOracle, OASISSampler, load_benchmark


def main():
    pool = load_benchmark("abt_buy", scale="tiny", random_state=42)
    true_f = pool.performance["f_measure"]
    print(f"pool: {len(pool)} pairs, true F = {true_f:.4f}\n")

    # One run: watch the interval tighten.
    sampler = OASISSampler(
        pool.predictions, pool.scores_calibrated,
        DeterministicOracle(pool.true_labels), random_state=0,
    )
    print("budget   estimate   95% interval        width")
    for budget in [50, 100, 200, 400, 800]:
        sampler.sample_until_budget(budget)
        lo, hi = sampler.confidence_interval(0.95)
        print(f"{sampler.labels_consumed:6d}   {sampler.estimate:.4f}"
              f"   [{lo:.4f}, {hi:.4f}]   {hi - lo:.4f}")

    # Many runs: empirical coverage of the nominal 95% interval.
    trials, covered = 40, 0
    for seed in range(trials):
        s = OASISSampler(
            pool.predictions, pool.scores_calibrated,
            DeterministicOracle(pool.true_labels), random_state=seed,
        )
        s.sample_until_budget(300)
        lo, hi = s.confidence_interval(0.95)
        if lo <= true_f <= hi:
            covered += 1
    print(f"\nempirical coverage over {trials} runs at budget 300: "
          f"{100 * covered / trials:.0f}% (nominal 95%)")


if __name__ == "__main__":
    main()
