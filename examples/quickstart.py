"""Quickstart: evaluate an ER system's F-measure with OASIS.

Builds a small synthetic Abt-Buy-style evaluation pool (records, ER
pipeline, similarity scores, predicted matches), then estimates the
pipeline's F-measure with OASIS using a fraction of the labels an
exhaustive evaluation would need.

Run:  python examples/quickstart.py
"""

from repro import DeterministicOracle, OASISSampler, load_benchmark

BUDGET = 400  # distinct oracle labels we are willing to pay for


def main():
    # A ready-made benchmark pool: scores + predictions from a linear
    # SVM over a synthetic two-store product catalogue.
    pool = load_benchmark("abt_buy", scale="tiny", random_state=42)
    print(f"pool: {len(pool)} record pairs, {pool.n_matches} true matches "
          f"(imbalance 1:{pool.imbalance_ratio:.0f})")

    # Ground truth would normally come from human annotators; here the
    # oracle replays the synthetic ground truth.
    oracle = DeterministicOracle(pool.true_labels)

    sampler = OASISSampler(
        pool.predictions,          # R-hat membership per pair
        pool.scores_calibrated,    # similarity scores (calibrated probs)
        oracle,
        random_state=0,
    )
    sampler.sample_until_budget(BUDGET)

    true_f = pool.performance["f_measure"]
    print(f"\nafter {sampler.labels_consumed} labels:")
    print(f"  OASIS F-measure estimate : {sampler.estimate:.4f}")
    print(f"  exhaustive ground truth  : {true_f:.4f}")
    print(f"  absolute error           : {abs(sampler.estimate - true_f):.4f}")
    print(f"  precision / recall       : {sampler.precision_estimate:.3f}"
          f" / {sampler.recall_estimate:.3f}")
    print(f"\nan exhaustive evaluation would need {len(pool)} labels; "
          f"OASIS used {sampler.labels_consumed}.")


if __name__ == "__main__":
    main()
