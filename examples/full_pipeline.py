"""End-to-end ER: raw records -> pipeline -> OASIS evaluation.

Everything the paper's evaluation setting assumes, built from parts:

1. generate two noisy product catalogues with ground truth;
2. block, featurise and score candidate pairs with a from-scratch
   linear SVM (+ Platt calibration);
3. threshold into a predicted resolution R-hat;
4. evaluate R-hat's F-measure with OASIS against a labelling oracle,
   and compare with the exhaustive ground-truth answer.

Run:  python examples/full_pipeline.py
"""

import numpy as np

from repro import DeterministicOracle, OASISSampler, pool_performance
from repro.classifiers import LinearSVM, PlattCalibrator
from repro.datasets import generate_product_pair
from repro.pipeline import (
    ERPipeline,
    FieldSpec,
    MatchRelation,
    PairFeatureExtractor,
    cross_product_pairs,
    token_blocking_pairs,
)


def main():
    rng = np.random.default_rng(7)

    # -- 1. data ------------------------------------------------------
    store_a, store_b = generate_product_pair(
        250, overlap=0.4, noise_level=1.2, random_state=rng
    )
    print(f"catalogue A: {len(store_a)} records, "
          f"catalogue B: {len(store_b)} records")

    full_space = cross_product_pairs(len(store_a), len(store_b))
    relation = MatchRelation.from_entity_ids(store_a, store_b, full_space)
    print(f"pair space: {len(full_space)} pairs, "
          f"{relation.n_matches} true matches "
          f"(imbalance 1:{relation.imbalance_ratio:.0f})")

    # Blocking reduces the scored candidate set (kept separate from the
    # evaluation pool, which stays unbiased).
    blocked = token_blocking_pairs(store_a, store_b, "name")
    print(f"token blocking on 'name': {len(blocked)} candidate pairs "
          f"({100 * len(blocked) / len(full_space):.1f}% of the space)")

    # -- 2. pipeline ---------------------------------------------------
    extractor = PairFeatureExtractor([
        FieldSpec("name", "short_text"),
        FieldSpec("description", "long_text"),
        FieldSpec("price", "numeric"),
    ])
    # Score with calibrated probabilities (LIBSVM-style CV Platt
    # scaling) and match at p >= 0.5.
    classifier = PlattCalibrator(LinearSVM(random_state=1), random_state=1)
    pipeline = ERPipeline(
        extractor, classifier, threshold=0.5, use_probabilities=True
    )

    # Train on a small, deliberately match-enriched labelled subset.
    match_rows = np.nonzero(relation.labels == 1)[0]
    nonmatch_rows = rng.choice(
        np.nonzero(relation.labels == 0)[0], size=500, replace=False
    )
    train_rows = np.concatenate([match_rows[:40], nonmatch_rows])
    pipeline.fit(
        store_a, store_b, full_space[train_rows], relation.labels[train_rows]
    )

    # -- 3. resolve the full pair space --------------------------------
    out = pipeline.resolve(full_space)
    predictions = out["predictions"]
    scores = out["scores"]
    print(f"\npipeline predicts {int(predictions.sum())} matching pairs")

    # -- 4. evaluation --------------------------------------------------
    truth = pool_performance(relation.labels, predictions)
    print(f"exhaustive truth: P={truth['precision']:.3f} "
          f"R={truth['recall']:.3f} F={truth['f_measure']:.3f} "
          f"({len(full_space)} labels)")

    oracle = DeterministicOracle(relation.labels)
    sampler = OASISSampler(predictions, scores, oracle, random_state=0)
    budget = 600
    sampler.sample_until_budget(budget)
    print(f"OASIS estimate:   F={sampler.estimate:.3f} "
          f"({sampler.labels_consumed} labels, "
          f"{100 * sampler.labels_consumed / len(full_space):.1f}% of the pool)")
    print(f"absolute error:   {abs(sampler.estimate - truth['f_measure']):.4f}")


if __name__ == "__main__":
    main()
