"""Evaluating with a noisy simulated crowd instead of perfect labels.

The paper motivates OASIS with crowdsourced annotation, and its theory
covers randomised oracles.  This example evaluates the same pool three
ways — perfect oracle, single noisy annotator, majority vote of five
annotators — and shows how the estimate's target shifts with oracle
quality.

Run:  python examples/crowd_oracle.py
"""

import numpy as np

from repro import (
    CrowdOracle,
    DeterministicOracle,
    NoisyOracle,
    OASISSampler,
    load_benchmark,
)

BUDGET = 400


def evaluate(pool, oracle, label, seeds=range(5)):
    estimates = []
    for seed in seeds:
        sampler = OASISSampler(
            pool.predictions,
            pool.scores_calibrated,
            oracle,
            random_state=seed,
        )
        sampler.sample_until_budget(BUDGET)
        estimates.append(sampler.estimate)
    mean = float(np.mean(estimates))
    std = float(np.std(estimates))
    print(f"  {label:28s} F = {mean:.4f} +- {std:.4f}")
    return mean


def main():
    pool = load_benchmark("abt_buy", scale="tiny", random_state=42)
    true_f = pool.performance["f_measure"]
    print(f"pool: {len(pool)} pairs, true F = {true_f:.4f}")
    print(f"estimates after {BUDGET} labels (mean +- std over 5 runs):")

    evaluate(pool, DeterministicOracle(pool.true_labels), "perfect oracle")

    # A single annotator who errs 10% of the time.  Note the target of
    # a consistent estimator is now the F-measure against the *oracle's*
    # label distribution, which differs from the clean-label F.
    evaluate(
        pool,
        NoisyOracle(true_labels=pool.true_labels, flip_prob=0.10, random_state=1),
        "single annotator (10% error)",
    )

    # Majority vote over five such annotators: the effective error rate
    # drops and the estimate moves back toward the clean target.
    crowd = CrowdOracle(
        pool.true_labels, worker_accuracies=[0.9] * 5, random_state=1
    )
    print(f"  (5-worker majority accuracy: {crowd.majority_accuracy:.4f})")
    evaluate(pool, crowd, "crowd of 5 (90% each)")

    ratio = pool.imbalance_ratio
    print(
        f"\nnote how class imbalance amplifies oracle noise: at 1:{ratio:.0f}"
        f" even a {100 * (1 - crowd.majority_accuracy):.1f}% vote error rate"
        " relabels several non-matches as 'matches' for every true match,"
        " so the F-measure *target itself* drops. Crowd evaluation under"
        " imbalance needs very accurate aggregated labels."
    )


if __name__ == "__main__":
    main()
