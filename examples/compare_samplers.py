"""Compare all four sampling methods on one pool (a mini Figure 2).

Runs Passive, Stratified, static IS and OASIS repeatedly on the same
synthetic Abt-Buy pool and prints the expected absolute error of the
F-measure estimate at increasing label budgets — the experiment behind
the paper's Figure 2, at laptop scale.

Run:  python examples/compare_samplers.py
"""

from repro import (
    ImportanceSampler,
    OASISSampler,
    PassiveSampler,
    StratifiedSampler,
    load_benchmark,
)
from repro.experiments import (
    SamplerSpec,
    aggregate_trajectories,
    format_series,
    run_trials,
)

BUDGETS = [100, 250, 500, 1000, 2000]
N_REPEATS = 10


def main():
    pool = load_benchmark("abt_buy", scale="small", random_state=42)
    threshold = pool.threshold
    print(f"pool: {len(pool)} pairs, {pool.n_matches} matches, "
          f"true F = {pool.performance['f_measure']:.4f}")

    specs = [
        SamplerSpec("Passive", lambda p, s, o, r: PassiveSampler(
            p, s, o, random_state=r)),
        SamplerSpec("Stratified", lambda p, s, o, r: StratifiedSampler(
            p, s, o, n_strata=30, random_state=r)),
        SamplerSpec("IS", lambda p, s, o, r: ImportanceSampler(
            p, s, o, threshold=threshold, random_state=r)),
        SamplerSpec("OASIS", lambda p, s, o, r: OASISSampler(
            p, s, o, n_strata=30, threshold=threshold, random_state=r)),
    ]

    print(f"\nrunning {len(specs)} methods x {N_REPEATS} repeats "
          f"(budgets to {BUDGETS[-1]})...")
    results = run_trials(
        pool, specs, budgets=BUDGETS, n_repeats=N_REPEATS, random_state=0
    )

    print("\nexpected |F_hat - F| by label budget "
          "(nan = estimate undefined in >5% of runs):")
    for name, result in results.items():
        stats = aggregate_trajectories(result)
        print(format_series(f"  {name}", stats.budgets, stats.abs_error))

    oasis = aggregate_trajectories(results["OASIS"])
    passive = aggregate_trajectories(results["Passive"])
    tol = passive.final_abs_error()
    if tol == tol:  # not NaN
        needed = oasis.labels_to_reach(tol)
        print(f"\nOASIS reaches passive's final error ({tol:.4f}) with "
              f"{needed:.0f} labels instead of {BUDGETS[-1]} "
              f"({100 * (1 - needed / BUDGETS[-1]):.0f}% fewer)")
    else:
        print("\npassive sampling never produced a reliably defined "
              "estimate at these budgets; OASIS did at every budget.")


if __name__ == "__main__":
    main()
