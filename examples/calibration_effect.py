"""Calibrated vs uncalibrated similarity scores (a mini Figure 3).

The static IS baseline trusts the scores it is given: raw SVM margins
make its fixed instrumental distribution far from optimal.  OASIS
learns the oracle probabilities from incoming labels and recovers.

Run:  python examples/calibration_effect.py
"""

import numpy as np

from repro import (
    DeterministicOracle,
    ImportanceSampler,
    OASISSampler,
    load_benchmark,
)

BUDGET = 800
N_REPEATS = 8


def mean_error(factory, pool, scores):
    errors = []
    for seed in range(N_REPEATS):
        sampler = factory(scores, seed)
        sampler.sample_until_budget(BUDGET)
        if not np.isnan(sampler.estimate):
            errors.append(abs(sampler.estimate - pool.performance["f_measure"]))
    return float(np.mean(errors)) if errors else float("nan")


def main():
    pool = load_benchmark("abt_buy", scale="small", random_state=42)
    print(f"pool: {len(pool)} pairs, true F = "
          f"{pool.performance['f_measure']:.4f}")
    print(f"mean |F_hat - F| after {BUDGET} labels "
          f"({N_REPEATS} runs each):\n")

    def make_is(scores, seed):
        return ImportanceSampler(
            pool.predictions, scores,
            DeterministicOracle(pool.true_labels),
            threshold=pool.threshold, random_state=seed,
        )

    def make_oasis(scores, seed):
        return OASISSampler(
            pool.predictions, scores,
            DeterministicOracle(pool.true_labels),
            n_strata=60, threshold=pool.threshold, random_state=seed,
        )

    rows = [
        ("IS, uncalibrated margins", make_is, pool.scores),
        ("IS, calibrated probs", make_is, pool.scores_calibrated),
        ("OASIS, uncalibrated margins", make_oasis, pool.scores),
        ("OASIS, calibrated probs", make_oasis, pool.scores_calibrated),
    ]
    for label, factory, scores in rows:
        print(f"  {label:30s} {mean_error(factory, pool, scores):.4f}")

    print(
        "\ncalibration matters most for static IS; OASIS adapts its "
        "instrumental distribution from labels and degrades far less."
    )


if __name__ == "__main__":
    main()
