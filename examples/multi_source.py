"""Multi-source ER evaluation (paper Remark 1).

OASIS's theory covers relations over larger product spaces than two
databases.  This example resolves THREE product catalogues against each
other: the pool is every cross-source candidate pair, the pipeline
scores them jointly, and OASIS evaluates the combined resolution.

Run:  python examples/multi_source.py
"""

import numpy as np

from repro import DeterministicOracle, OASISSampler, pool_performance
from repro.classifiers import LogisticRegression
from repro.datasets import generate_product_pair
from repro.datasets.entities import ProductEntityGenerator
from repro.datasets.corruption import corrupt_string, perturb_number
from repro.pipeline import (
    FieldSpec,
    MultiSourcePool,
    PairFeatureExtractor,
    Record,
    RecordStore,
)


def render_catalogue(entities, picks, noise, rng, name):
    """One store listing a subset of the entity universe, noisily."""
    store = RecordStore(("name", "description", "price"), name=name)
    for record_id, index in enumerate(picks):
        entity = entities[index]
        store.add(Record(
            record_id=record_id,
            entity_id=entity["entity_id"],
            fields={
                "name": corrupt_string(entity["name"], rng, typo_rate=noise),
                "description": corrupt_string(
                    entity["description"], rng, typo_rate=noise / 2
                ),
                "price": perturb_number(entity["price"], 0.03, rng),
            },
        ))
    return store


def main():
    rng = np.random.default_rng(11)
    entities = ProductEntityGenerator(rng).generate(150)

    # Three stores, each listing a random 60% of the universe.
    stores = [
        render_catalogue(
            entities, rng.choice(150, size=90, replace=False),
            noise=0.015, rng=rng, name=f"store_{tag}",
        )
        for tag in "abc"
    ]
    pool = MultiSourcePool(stores)
    pairs = pool.cross_source_pairs()
    labels = pool.true_labels(pairs)
    print(f"3 sources x 90 records -> {len(pairs)} cross-source pairs, "
          f"{labels.sum()} true matches "
          f"(imbalance 1:{(len(pairs) - labels.sum()) / labels.sum():.0f})")

    # Featurise pairs in the global index space.  The extractor works
    # per source pair; for simplicity concatenate all records into one
    # virtual store on each side.
    virtual = RecordStore(("name", "description", "price"), name="all")
    record_id = 0
    for store in stores:
        for record in store:
            virtual.add(Record(record_id, record.entity_id, record.fields))
            record_id += 1
    extractor = PairFeatureExtractor([
        FieldSpec("name", "short_text"),
        FieldSpec("description", "long_text"),
        FieldSpec("price", "numeric"),
    ])
    extractor.fit(virtual, virtual)

    # Train on a labelled, match-enriched subset of pairs.
    match_rows = np.nonzero(labels == 1)[0]
    nonmatch_rows = rng.choice(
        np.nonzero(labels == 0)[0], size=400, replace=False
    )
    train = np.concatenate([match_rows[: len(match_rows) // 2], nonmatch_rows])
    model = LogisticRegression()
    model.fit(extractor.transform(pairs[train]), labels[train])

    scores = model.predict_proba(extractor.transform(pairs))
    predictions = (scores >= 0.5).astype(np.int8)

    truth = pool_performance(labels, predictions)
    print(f"exhaustive truth: P={truth['precision']:.3f} "
          f"R={truth['recall']:.3f} F={truth['f_measure']:.3f}")

    sampler = OASISSampler(
        predictions, scores, DeterministicOracle(labels), random_state=0
    )
    sampler.sample_until_budget(500)
    print(f"OASIS estimate:   F={sampler.estimate:.3f} "
          f"({sampler.labels_consumed} labels, "
          f"{100 * sampler.labels_consumed / len(pairs):.1f}% of the pool)")
    print(f"absolute error:   "
          f"{abs(sampler.estimate - truth['f_measure']):.4f}")


if __name__ == "__main__":
    main()
